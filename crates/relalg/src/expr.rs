//! Scalar expressions: construction, compilation, evaluation.
//!
//! Expressions are built by name ([`col`], [`lit`], comparison helpers) and
//! compiled against a [`Schema`] into index-resolved form ([`CompiledExpr`])
//! before evaluation, so the per-row hot path does no name lookups.

use crate::batch::{BatchCol, ColumnBatch};
use crate::error::Result;
use crate::relation::{Column, Row};
use crate::schema::{ColRef, Schema};
use crate::value::{str_eq, Value};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Apply to a concrete ordering outcome.
    fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Integer arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Integer division; division by zero yields `Null`.
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// A scalar expression over named columns.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Column reference (resolved at compile time).
    Col(ColRef),
    /// Literal value.
    Lit(Value),
    /// Binary comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Integer arithmetic; non-integer operands evaluate to `Null`.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Conjunction (empty = true).
    And(Vec<Expr>),
    /// Disjunction (empty = false).
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

/// Column reference expression; accepts `"name"` or `"alias.name"`.
pub fn col(name: &str) -> Expr {
    Expr::Col(ColRef::parse(name))
}

/// Literal expression from anything convertible to [`Value`].
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

/// Integer literal.
pub fn lit_i64(v: i64) -> Expr {
    Expr::Lit(Value::Int(v))
}

/// String literal. Interned, so comparing it against interned (loaded)
/// string columns resolves by pointer on the equality fast path.
pub fn lit_str(s: &str) -> Expr {
    Expr::Lit(Value::interned(s))
}

/// Boolean literal.
pub fn lit_bool(b: bool) -> Expr {
    Expr::Lit(Value::Bool(b))
}

// The builder methods deliberately shadow operator-trait names: they
// construct AST nodes (`col("a").add(lit_i64(1))`), they don't compute.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(other))
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(other))
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(other))
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(other))
    }

    /// `self + other` (integer).
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(other))
    }

    /// `self - other` (integer).
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(other))
    }

    /// `self * other` (integer).
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(other))
    }

    /// `self / other` (integer; x/0 = Null).
    pub fn div(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Div, Box::new(self), Box::new(other))
    }

    /// Conjunction, flattening nested `And`s and dropping `true`.
    pub fn and(parts: impl IntoIterator<Item = Expr>) -> Expr {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Expr::And(inner) => out.extend(inner),
                Expr::Lit(Value::Bool(true)) => {}
                other => out.push(other),
            }
        }
        match out.len() {
            0 => lit_bool(true),
            1 => out.pop().unwrap(),
            _ => Expr::And(out),
        }
    }

    /// Disjunction, flattening nested `Or`s and dropping `false`.
    pub fn or(parts: impl IntoIterator<Item = Expr>) -> Expr {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Expr::Or(inner) => out.extend(inner),
                Expr::Lit(Value::Bool(false)) => {}
                other => out.push(other),
            }
        }
        match out.len() {
            0 => lit_bool(false),
            1 => out.pop().unwrap(),
            _ => Expr::Or(out),
        }
    }

    /// `¬self`.
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `low <= self AND self <= high` (paper's `between`).
    pub fn between(self, low: Expr, high: Expr) -> Expr {
        Expr::and([self.clone().ge(low), self.le(high)])
    }

    /// The set of column references this expression mentions.
    pub fn columns(&self) -> BTreeSet<ColRef> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<ColRef>) {
        match self {
            Expr::Col(c) => {
                out.insert(c.clone());
            }
            Expr::Lit(_) => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::And(parts) | Expr::Or(parts) => {
                for p in parts {
                    p.collect_columns(out);
                }
            }
            Expr::Not(e) => e.collect_columns(out),
        }
    }

    /// Visit every conjunct by reference (the allocation-free sibling of
    /// [`Expr::conjuncts`] — cardinality estimation walks predicates a
    /// lot and must not clone them).
    pub fn for_each_conjunct<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        match self {
            Expr::And(parts) => {
                for p in parts {
                    p.for_each_conjunct(f);
                }
            }
            Expr::Lit(Value::Bool(true)) => {}
            other => f(other),
        }
    }

    /// Split a conjunctive expression into its conjuncts.
    pub fn conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::And(parts) => parts.into_iter().flat_map(Expr::conjuncts).collect(),
            Expr::Lit(Value::Bool(true)) => vec![],
            other => vec![other],
        }
    }

    /// `true` iff the expression is the literal `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, Expr::Lit(Value::Bool(true)))
    }

    /// Rewrite every column reference with `f`.
    pub fn map_columns(&self, f: &impl Fn(&ColRef) -> ColRef) -> Expr {
        match self {
            Expr::Col(c) => Expr::Col(f(c)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => {
                Expr::Cmp(*op, Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            Expr::Arith(op, a, b) => {
                Expr::Arith(*op, Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            Expr::And(parts) => Expr::And(parts.iter().map(|p| p.map_columns(f)).collect()),
            Expr::Or(parts) => Expr::Or(parts.iter().map(|p| p.map_columns(f)).collect()),
            Expr::Not(e) => Expr::Not(Box::new(e.map_columns(f))),
        }
    }

    /// Compile against a schema: resolve all column references to indices.
    pub fn compile(&self, schema: &Schema) -> Result<CompiledExpr> {
        Ok(match self {
            Expr::Col(c) => CompiledExpr::Col(schema.resolve(c)?),
            Expr::Lit(v) => CompiledExpr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => CompiledExpr::Cmp(
                *op,
                Box::new(a.compile(schema)?),
                Box::new(b.compile(schema)?),
            ),
            Expr::Arith(op, a, b) => CompiledExpr::Arith(
                *op,
                Box::new(a.compile(schema)?),
                Box::new(b.compile(schema)?),
            ),
            Expr::And(parts) => CompiledExpr::And(
                parts
                    .iter()
                    .map(|p| p.compile(schema))
                    .collect::<Result<_>>()?,
            ),
            Expr::Or(parts) => CompiledExpr::Or(
                parts
                    .iter()
                    .map(|p| p.compile(schema))
                    .collect::<Result<_>>()?,
            ),
            Expr::Not(e) => CompiledExpr::Not(Box::new(e.compile(schema)?)),
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Lit(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Arith(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Expr::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Expr::Not(e) => write!(f, "NOT {e}"),
        }
    }
}

/// Index-resolved expression; evaluation does no name lookups.
#[derive(Clone, Debug)]
pub enum CompiledExpr {
    Col(usize),
    Lit(Value),
    Cmp(CmpOp, Box<CompiledExpr>, Box<CompiledExpr>),
    Arith(ArithOp, Box<CompiledExpr>, Box<CompiledExpr>),
    And(Vec<CompiledExpr>),
    Or(Vec<CompiledExpr>),
    Not(Box<CompiledExpr>),
}

fn eval_arith(op: ArithOp, a: Value, b: Value) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match op {
            ArithOp::Add => Value::Int(x.wrapping_add(y)),
            ArithOp::Sub => Value::Int(x.wrapping_sub(y)),
            ArithOp::Mul => Value::Int(x.wrapping_mul(y)),
            ArithOp::Div => {
                if y == 0 {
                    Value::Null
                } else {
                    Value::Int(x.wrapping_div(y))
                }
            }
        },
        _ => Value::Null,
    }
}

impl CompiledExpr {
    /// Evaluate to a value.
    pub fn eval(&self, row: &Row) -> Value {
        match self {
            CompiledExpr::Col(i) => row[*i].clone(),
            CompiledExpr::Lit(v) => v.clone(),
            CompiledExpr::Cmp(op, a, b) => Value::Bool(op.eval(a.eval(row).cmp(&b.eval(row)))),
            CompiledExpr::Arith(op, a, b) => eval_arith(*op, a.eval(row), b.eval(row)),
            CompiledExpr::And(parts) => Value::Bool(parts.iter().all(|p| p.eval_bool(row))),
            CompiledExpr::Or(parts) => Value::Bool(parts.iter().any(|p| p.eval_bool(row))),
            CompiledExpr::Not(e) => Value::Bool(!e.eval_bool(row)),
        }
    }

    /// Evaluate to a boolean; non-boolean results are false (positive
    /// algebra never produces them for well-formed predicates).
    pub fn eval_bool(&self, row: &Row) -> bool {
        matches!(self.eval(row), Value::Bool(true))
    }

    /// Evaluate over a pair of rows viewed as a concatenation without
    /// materializing it (hot path of nested-loop joins).
    pub fn eval_bool_pair(&self, left: &Row, right: &Row) -> bool {
        matches!(self.eval_pair(left, right), Value::Bool(true))
    }

    fn eval_pair(&self, left: &Row, right: &Row) -> Value {
        match self {
            CompiledExpr::Col(i) => {
                if *i < left.len() {
                    left[*i].clone()
                } else {
                    right[*i - left.len()].clone()
                }
            }
            CompiledExpr::Lit(v) => v.clone(),
            CompiledExpr::Cmp(op, a, b) => {
                Value::Bool(op.eval(a.eval_pair(left, right).cmp(&b.eval_pair(left, right))))
            }
            CompiledExpr::Arith(op, a, b) => {
                eval_arith(*op, a.eval_pair(left, right), b.eval_pair(left, right))
            }
            CompiledExpr::And(parts) => Value::Bool(
                parts
                    .iter()
                    .all(|p| matches!(p.eval_pair(left, right), Value::Bool(true))),
            ),
            CompiledExpr::Or(parts) => Value::Bool(
                parts
                    .iter()
                    .any(|p| matches!(p.eval_pair(left, right), Value::Bool(true))),
            ),
            CompiledExpr::Not(e) => {
                Value::Bool(!matches!(e.eval_pair(left, right), Value::Bool(true)))
            }
        }
    }

    // -- vectorized evaluation over column batches ------------------------

    /// Evaluate at one logical position of a batch (the generic per-row
    /// fallback behind the vectorized kernels).
    pub fn eval_at(&self, batch: &ColumnBatch<'_>, pos: usize) -> Value {
        match self {
            CompiledExpr::Col(i) => batch.value(*i, pos),
            CompiledExpr::Lit(v) => v.clone(),
            CompiledExpr::Cmp(op, a, b) => {
                Value::Bool(op.eval(a.eval_at(batch, pos).cmp(&b.eval_at(batch, pos))))
            }
            CompiledExpr::Arith(op, a, b) => {
                eval_arith(*op, a.eval_at(batch, pos), b.eval_at(batch, pos))
            }
            CompiledExpr::And(parts) => Value::Bool(
                parts
                    .iter()
                    .all(|p| matches!(p.eval_at(batch, pos), Value::Bool(true))),
            ),
            CompiledExpr::Or(parts) => Value::Bool(
                parts
                    .iter()
                    .any(|p| matches!(p.eval_at(batch, pos), Value::Bool(true))),
            ),
            CompiledExpr::Not(e) => {
                Value::Bool(!matches!(e.eval_at(batch, pos), Value::Bool(true)))
            }
        }
    }

    /// AND this predicate into `mask` over every batch position: after
    /// the call, `mask[pos]` holds iff it held before *and* the predicate
    /// is true at `pos`.
    ///
    /// Comparisons between columns and literals (and between two
    /// columns) dispatch their column types once and then run tight
    /// per-row loops — over `i64` slices for integer columns, with
    /// pointer-first equality for interned string columns. Everything
    /// else falls back to [`CompiledExpr::eval_at`] per surviving row.
    pub fn and_mask(&self, batch: &ColumnBatch<'_>, mask: &mut [bool]) {
        match self {
            CompiledExpr::And(parts) => {
                for p in parts {
                    p.and_mask(batch, mask);
                }
            }
            CompiledExpr::Or(parts) => {
                // acc = candidates satisfying any disjunct.
                let mut acc = vec![false; mask.len()];
                let mut scratch = vec![false; mask.len()];
                for p in parts {
                    scratch.copy_from_slice(mask);
                    p.and_mask(batch, &mut scratch);
                    for (a, s) in acc.iter_mut().zip(&scratch) {
                        *a |= *s;
                    }
                }
                mask.copy_from_slice(&acc);
            }
            CompiledExpr::Not(e) => {
                let mut inner = mask.to_vec();
                e.and_mask(batch, &mut inner);
                for (m, i) in mask.iter_mut().zip(&inner) {
                    *m = *m && !*i;
                }
            }
            CompiledExpr::Lit(Value::Bool(true)) => {}
            CompiledExpr::Lit(_) => mask.fill(false),
            CompiledExpr::Cmp(op, a, b) => match (a.as_ref(), b.as_ref()) {
                (CompiledExpr::Col(i), CompiledExpr::Lit(v)) => {
                    cmp_col_lit_mask(*op, &batch.cols[*i], v, mask);
                }
                (CompiledExpr::Lit(v), CompiledExpr::Col(i)) => {
                    cmp_col_lit_mask(op.flipped(), &batch.cols[*i], v, mask);
                }
                (CompiledExpr::Col(i), CompiledExpr::Col(j)) => {
                    cmp_col_col_mask(*op, &batch.cols[*i], &batch.cols[*j], mask);
                }
                _ => self.and_mask_fallback(batch, mask),
            },
            _ => self.and_mask_fallback(batch, mask),
        }
    }

    fn and_mask_fallback(&self, batch: &ColumnBatch<'_>, mask: &mut [bool]) {
        for (pos, m) in mask.iter_mut().enumerate() {
            if *m {
                *m = matches!(self.eval_at(batch, pos), Value::Bool(true));
            }
        }
    }

    /// Evaluate into a whole batch column (the vectorized projection
    /// path for computed expressions; plain `Col` references are handled
    /// by the executor as pointer shuffles and never reach here).
    pub fn eval_column<'a>(&self, batch: &ColumnBatch<'a>) -> BatchCol<'a> {
        match self {
            CompiledExpr::Col(i) => batch.cols[*i].clone(),
            CompiledExpr::Lit(v) => BatchCol::Const(v.clone()),
            CompiledExpr::Arith(op, a, b) if !matches!(op, ArithOp::Div) => {
                // Wrapping Add/Sub/Mul over integer operands stays typed;
                // Div can produce Null (x/0) and uses the generic path.
                if let (Some(av), Some(bv)) = (int_operand(a, batch), int_operand(b, batch)) {
                    let vals: Vec<i64> = (0..batch.len())
                        .map(|pos| {
                            let (x, y) = (av.get(pos), bv.get(pos));
                            match op {
                                ArithOp::Add => x.wrapping_add(y),
                                ArithOp::Sub => x.wrapping_sub(y),
                                ArithOp::Mul => x.wrapping_mul(y),
                                ArithOp::Div => unreachable!("guarded above"),
                            }
                        })
                        .collect();
                    return BatchCol::Owned(Arc::new(Column::Int(vals)));
                }
                self.eval_column_fallback(batch)
            }
            _ => self.eval_column_fallback(batch),
        }
    }

    fn eval_column_fallback<'a>(&self, batch: &ColumnBatch<'a>) -> BatchCol<'a> {
        let vals: Vec<Value> = (0..batch.len())
            .map(|pos| self.eval_at(batch, pos))
            .collect();
        BatchCol::Owned(Arc::new(Column::from_values(vals)))
    }

    /// The `(column, op, literal)` form of a sargable comparison —
    /// `Col op Lit` either way around — or `None` for anything else.
    /// Zone-map skipping keys off this: a conjunct in this shape can
    /// refute whole storage segments from their min/max bounds alone.
    pub fn sargable(&self) -> Option<(usize, CmpOp, Value)> {
        match self {
            CompiledExpr::Cmp(op, a, b) => match (a.as_ref(), b.as_ref()) {
                (CompiledExpr::Col(i), CompiledExpr::Lit(v)) => Some((*i, *op, v.clone())),
                (CompiledExpr::Lit(v), CompiledExpr::Col(i)) => Some((*i, op.flipped(), v.clone())),
                _ => None,
            },
            _ => None,
        }
    }

    /// Collect the sargable conjuncts of this predicate into `out`,
    /// looking through top-level `AND`s (a row must satisfy every
    /// conjunct, so each sargable one independently licenses zone-map
    /// pruning — even in unoptimized plans where conjunctions haven't
    /// been split into separate selections yet).
    pub fn collect_sargable(&self, out: &mut Vec<(usize, CmpOp, Value)>) {
        match self {
            CompiledExpr::And(parts) => parts.iter().for_each(|p| p.collect_sargable(out)),
            other => out.extend(other.sargable()),
        }
    }
}

/// Integer access to a batch column, resolved once per kernel call.
enum IntOperand<'b> {
    Slice(&'b [i64]),
    Sel(&'b [i64], &'b [u32]),
    Dense(&'b [i64]),
    Const(i64),
}

impl IntOperand<'_> {
    #[inline]
    fn get(&self, pos: usize) -> i64 {
        match self {
            IntOperand::Slice(v) => v[pos],
            IntOperand::Sel(v, sel) => v[sel[pos] as usize],
            IntOperand::Dense(v) => v[pos],
            IntOperand::Const(k) => *k,
        }
    }
}

fn int_col(col: &Column) -> Option<&[i64]> {
    match col {
        Column::Int(v) => Some(v),
        _ => None,
    }
}

fn int_access<'b>(c: &'b BatchCol<'_>, len: usize) -> Option<IntOperand<'b>> {
    match c {
        BatchCol::Slice { col, start } => {
            Some(IntOperand::Slice(&int_col(col)?[*start..*start + len]))
        }
        BatchCol::View { col, sel } => Some(IntOperand::Sel(int_col(col)?, sel)),
        BatchCol::Owned(col) => Some(IntOperand::Dense(int_col(col.as_ref())?)),
        BatchCol::Const(Value::Int(k)) => Some(IntOperand::Const(*k)),
        BatchCol::Const(_) => None,
        BatchCol::Shared { col, start } => {
            Some(IntOperand::Slice(&int_col(col)?[*start..*start + len]))
        }
        BatchCol::SharedView { col, sel } => Some(IntOperand::Sel(int_col(col)?, sel)),
    }
}

fn int_operand<'b>(e: &CompiledExpr, batch: &'b ColumnBatch<'_>) -> Option<IntOperand<'b>> {
    match e {
        CompiledExpr::Col(i) => int_access(&batch.cols[*i], batch.len()),
        CompiledExpr::Lit(Value::Int(k)) => Some(IntOperand::Const(*k)),
        _ => None,
    }
}

/// String access to a batch column.
enum StrOperand<'b> {
    Slice(&'b [Arc<str>]),
    Sel(&'b [Arc<str>], &'b [u32]),
    Dense(&'b [Arc<str>]),
}

impl StrOperand<'_> {
    #[inline]
    fn get(&self, pos: usize) -> &Arc<str> {
        match self {
            StrOperand::Slice(v) => &v[pos],
            StrOperand::Sel(v, sel) => &v[sel[pos] as usize],
            StrOperand::Dense(v) => &v[pos],
        }
    }
}

fn str_col(col: &Column) -> Option<&[Arc<str>]> {
    match col {
        Column::Str(v) => Some(v),
        _ => None,
    }
}

fn str_access<'b>(c: &'b BatchCol<'_>, len: usize) -> Option<StrOperand<'b>> {
    match c {
        BatchCol::Slice { col, start } => {
            Some(StrOperand::Slice(&str_col(col)?[*start..*start + len]))
        }
        BatchCol::View { col, sel } => Some(StrOperand::Sel(str_col(col)?, sel)),
        BatchCol::Owned(col) => Some(StrOperand::Dense(str_col(col.as_ref())?)),
        BatchCol::Const(_) => None,
        BatchCol::Shared { col, start } => {
            Some(StrOperand::Slice(&str_col(col)?[*start..*start + len]))
        }
        BatchCol::SharedView { col, sel } => Some(StrOperand::Sel(str_col(col)?, sel)),
    }
}

#[inline]
fn int_cmp_fn(op: CmpOp) -> fn(i64, i64) -> bool {
    match op {
        CmpOp::Eq => |x, y| x == y,
        CmpOp::Ne => |x, y| x != y,
        CmpOp::Lt => |x, y| x < y,
        CmpOp::Le => |x, y| x <= y,
        CmpOp::Gt => |x, y| x > y,
        CmpOp::Ge => |x, y| x >= y,
    }
}

fn cmp_col_lit_mask(op: CmpOp, col: &BatchCol<'_>, lit: &Value, mask: &mut [bool]) {
    let len = mask.len();
    // Integer column vs integer literal: the SIMD-friendly tight loop.
    if let (Some(acc), Value::Int(k)) = (int_access(col, len), lit) {
        let f = int_cmp_fn(op);
        let k = *k;
        match acc {
            IntOperand::Slice(v) => {
                for (m, &x) in mask.iter_mut().zip(v) {
                    *m = *m && f(x, k);
                }
            }
            IntOperand::Sel(v, sel) => {
                for (m, &s) in mask.iter_mut().zip(sel) {
                    *m = *m && f(v[s as usize], k);
                }
            }
            IntOperand::Dense(v) => {
                for (m, &x) in mask.iter_mut().zip(v) {
                    *m = *m && f(x, k);
                }
            }
            IntOperand::Const(x) => {
                if !f(x, k) {
                    mask.fill(false);
                }
            }
        }
        return;
    }
    // String column vs string literal: pointer-first equality (interned
    // loads share allocations), byte order for the rest.
    if let (Some(acc), Value::Str(s)) = (str_access(col, len), lit) {
        match op {
            CmpOp::Eq => {
                for (pos, m) in mask.iter_mut().enumerate() {
                    *m = *m && str_eq(acc.get(pos), s);
                }
            }
            CmpOp::Ne => {
                for (pos, m) in mask.iter_mut().enumerate() {
                    *m = *m && !str_eq(acc.get(pos), s);
                }
            }
            _ => {
                for (pos, m) in mask.iter_mut().enumerate() {
                    *m = *m && op.eval(acc.get(pos).as_ref().cmp(s.as_ref()));
                }
            }
        }
        return;
    }
    // Mixed / null / type-mismatched columns: per-row total-order compare.
    for (pos, m) in mask.iter_mut().enumerate() {
        if *m {
            *m = op.eval(col.value(pos).cmp(lit));
        }
    }
}

fn cmp_col_col_mask(op: CmpOp, a: &BatchCol<'_>, b: &BatchCol<'_>, mask: &mut [bool]) {
    let len = mask.len();
    if let (Some(av), Some(bv)) = (int_access(a, len), int_access(b, len)) {
        let f = int_cmp_fn(op);
        // The hot ψ-descriptor case is Slice/View vs Slice/View over two
        // integer columns; one generic indexed loop covers all shapes
        // without any Value construction.
        for (pos, m) in mask.iter_mut().enumerate() {
            *m = *m && f(av.get(pos), bv.get(pos));
        }
        return;
    }
    if let (Some(av), Some(bv)) = (str_access(a, len), str_access(b, len)) {
        match op {
            CmpOp::Eq => {
                for (pos, m) in mask.iter_mut().enumerate() {
                    *m = *m && str_eq(av.get(pos), bv.get(pos));
                }
            }
            CmpOp::Ne => {
                for (pos, m) in mask.iter_mut().enumerate() {
                    *m = *m && !str_eq(av.get(pos), bv.get(pos));
                }
            }
            _ => {
                for (pos, m) in mask.iter_mut().enumerate() {
                    *m = *m && op.eval(av.get(pos).as_ref().cmp(bv.get(pos).as_ref()));
                }
            }
        }
        return;
    }
    for (pos, m) in mask.iter_mut().enumerate() {
        if *m {
            *m = op.eval(a.value(pos).cmp(&b.value(pos)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: Vec<Value>) -> Row {
        vals.into_boxed_slice()
    }

    #[test]
    fn comparisons() {
        let s = Schema::named(["a", "b"]);
        let e = col("a").lt(col("b")).compile(&s).unwrap();
        assert!(e.eval_bool(&row(vec![Value::Int(1), Value::Int(2)])));
        assert!(!e.eval_bool(&row(vec![Value::Int(2), Value::Int(2)])));
        let e = col("a").ge(lit_i64(5)).compile(&s).unwrap();
        assert!(e.eval_bool(&row(vec![Value::Int(5), Value::Null])));
    }

    #[test]
    fn boolean_connectives() {
        let s = Schema::named(["a"]);
        let e = Expr::or([col("a").eq(lit_i64(1)), col("a").eq(lit_i64(2))])
            .compile(&s)
            .unwrap();
        assert!(e.eval_bool(&row(vec![Value::Int(2)])));
        assert!(!e.eval_bool(&row(vec![Value::Int(3)])));
        let e = col("a").eq(lit_i64(1)).not().compile(&s).unwrap();
        assert!(e.eval_bool(&row(vec![Value::Int(9)])));
    }

    #[test]
    fn and_or_flattening() {
        let e = Expr::and([
            Expr::and([col("a").eq(lit_i64(1)), lit_bool(true)]),
            col("b").eq(lit_i64(2)),
        ]);
        assert_eq!(e.conjuncts().len(), 2);
        assert!(Expr::and([]).is_true());
        assert_eq!(Expr::or([]), lit_bool(false));
    }

    #[test]
    fn columns_collected() {
        let e = Expr::and([col("x.a").eq(col("y.b")), col("c").gt(lit_i64(0))]);
        let cols = e.columns();
        assert_eq!(cols.len(), 3);
        assert!(cols.contains(&ColRef::parse("x.a")));
    }

    #[test]
    fn between_inclusive() {
        let s = Schema::named(["d"]);
        let e = col("d")
            .between(lit_i64(10), lit_i64(20))
            .compile(&s)
            .unwrap();
        assert!(e.eval_bool(&row(vec![Value::Int(10)])));
        assert!(e.eval_bool(&row(vec![Value::Int(20)])));
        assert!(!e.eval_bool(&row(vec![Value::Int(21)])));
    }

    #[test]
    fn pair_eval_matches_concat() {
        let s = Schema::named(["a", "b", "c"]);
        let e = Expr::and([col("a").eq(col("c")), col("b").ne(lit_i64(0))])
            .compile(&s)
            .unwrap();
        let l = row(vec![Value::Int(7), Value::Int(1)]);
        let r = row(vec![Value::Int(7)]);
        let concat = row(vec![Value::Int(7), Value::Int(1), Value::Int(7)]);
        assert_eq!(e.eval_bool_pair(&l, &r), e.eval_bool(&concat));
    }

    #[test]
    fn compile_rejects_unknown() {
        let s = Schema::named(["a"]);
        assert!(col("nope").compile(&s).is_err());
    }

    #[test]
    fn arithmetic() {
        let s = Schema::named(["a", "b"]);
        let r = row(vec![Value::Int(10), Value::Int(3)]);
        let cases = [
            (col("a").add(col("b")), Value::Int(13)),
            (col("a").sub(col("b")), Value::Int(7)),
            (col("a").mul(col("b")), Value::Int(30)),
            (col("a").div(col("b")), Value::Int(3)),
            (col("a").div(lit_i64(0)), Value::Null),
            (col("a").add(lit_str("x")), Value::Null),
        ];
        for (e, want) in cases {
            assert_eq!(e.compile(&s).unwrap().eval(&r), want, "{e}");
        }
        // Arithmetic composes with comparisons.
        let e = col("a").add(col("b")).gt(lit_i64(12)).compile(&s).unwrap();
        assert!(e.eval_bool(&r));
    }

    #[test]
    fn vectorized_masks_match_per_row_eval() {
        use crate::relation::Relation;
        // Mixed-type table: Int, Str, and a column with Nulls (Mixed).
        let rel = Relation::from_rows(
            ["a", "s", "m"],
            (0..20)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::interned(if i % 3 == 0 { "x" } else { "y" }),
                        if i % 4 == 0 {
                            Value::Null
                        } else {
                            Value::Int(i)
                        },
                    ]
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let schema = Schema::named(["a", "s", "m"]);
        let batch = ColumnBatch::slice_of(rel.columns(), 0, 20);
        let preds = [
            col("a").lt(lit_i64(11)),
            col("a").eq(lit_i64(6)),
            lit_i64(3).le(col("a")),
            col("s").eq(lit_str("x")),
            col("s").ne(lit_str("y")),
            col("s").gt(lit_str("w")),
            col("a").eq(col("m")),
            col("m").ne(col("a")),
            col("s").eq(col("s")),
            Expr::or([col("a").lt(lit_i64(3)), col("s").eq(lit_str("x"))]),
            Expr::and([col("a").ge(lit_i64(2)), col("a").le(lit_i64(15))]),
            col("a").eq(lit_i64(5)).not(),
            col("a").add(lit_i64(1)).gt(lit_i64(10)), // arith: fallback path
            col("m").eq(lit(Value::Null)),
            lit_bool(false),
        ];
        for p in preds {
            let compiled = p.compile(&schema).unwrap();
            let mut mask = vec![true; 20];
            compiled.and_mask(&batch, &mut mask);
            for (pos, row) in rel.rows().iter().enumerate() {
                assert_eq!(
                    mask[pos],
                    compiled.eval_bool(row),
                    "mask diverges from row eval for {p} at row {pos}"
                );
                assert_eq!(compiled.eval_at(&batch, pos), compiled.eval(row), "{p}");
            }
        }
    }

    #[test]
    fn masks_only_narrow() {
        use crate::relation::Relation;
        let rel = Relation::from_rows(
            ["a"],
            (0..8).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>(),
        )
        .unwrap();
        let batch = ColumnBatch::slice_of(rel.columns(), 0, 8);
        let compiled = col("a")
            .ge(lit_i64(0))
            .compile(&Schema::named(["a"]))
            .unwrap();
        // Rows already masked out must stay masked out even when the
        // predicate holds.
        let mut mask = vec![false, true, false, true, true, false, true, false];
        let before = mask.clone();
        compiled.and_mask(&batch, &mut mask);
        assert_eq!(mask, before);
    }

    #[test]
    fn eval_column_matches_per_row() {
        use crate::relation::Relation;
        let rel = Relation::from_rows(
            ["a", "b"],
            (0..9)
                .map(|i| vec![Value::Int(i), Value::Int(2 * i)])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let schema = Schema::named(["a", "b"]);
        let batch = ColumnBatch::slice_of(rel.columns(), 0, 9);
        let exprs = [
            col("a").add(col("b")),
            col("a").mul(lit_i64(3)),
            col("b").sub(col("a")),
            col("a").div(col("a")), // Div: generic path (x/0 → Null at a=0)
            lit_str("pad"),
            col("a").lt(col("b")),
        ];
        for e in exprs {
            let compiled = e.compile(&schema).unwrap();
            let out = compiled.eval_column(&batch);
            for (pos, row) in rel.rows().iter().enumerate() {
                assert_eq!(out.value(pos), compiled.eval(row), "{e} at {pos}");
            }
        }
        // Typed Add over two int columns stays a typed column.
        let compiled = col("a").add(col("b")).compile(&schema).unwrap();
        let BatchCol::Owned(c) = compiled.eval_column(&batch) else {
            panic!("computed expression yields an owned column");
        };
        assert!(matches!(c.as_ref(), Column::Int(_)));
    }

    #[test]
    fn for_each_conjunct_matches_conjuncts() {
        let e = Expr::and([
            Expr::and([col("a").eq(lit_i64(1)), lit_bool(true)]),
            col("b").eq(lit_i64(2)),
        ]);
        let mut seen = Vec::new();
        e.for_each_conjunct(&mut |c| seen.push(c.clone()));
        assert_eq!(seen, e.conjuncts());
        let mut n = 0;
        lit_bool(true).for_each_conjunct(&mut |_| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn map_columns_requalifies() {
        let e = col("a").eq(col("b"));
        let q = e.map_columns(&|c| c.with_qualifier("t"));
        let cols = q.columns();
        assert!(cols.contains(&ColRef::parse("t.a")));
        assert!(cols.contains(&ColRef::parse("t.b")));
    }
}
