//! Per-relation statistics for cardinality estimation.

use crate::fxhash::FxHashSet;
use crate::relation::{Column, Relation};

/// Row count plus per-column number-of-distinct-values (NDV).
///
/// NDV drives the textbook equi-join estimate
/// `|L ⋈ R| ≈ |L|·|R| / max(ndv_L(k), ndv_R(k))` used by the greedy join
/// reorderer, mirroring what PostgreSQL's planner did for the paper's
/// translated queries.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Number of rows.
    pub rows: usize,
    /// Distinct value count per column (same order as the schema).
    pub ndv: Vec<usize>,
}

impl TableStats {
    /// Exact single-pass computation over the relation's columnar image
    /// (in-memory relations are small enough that sampling is not worth
    /// its complexity here). Typed columns count distincts without any
    /// `Value` hashing, and — since the catalog computes statistics
    /// eagerly at registration — this also builds and caches the image,
    /// so the first batched scan pays no conversion.
    pub fn compute(rel: &Relation) -> TableStats {
        let ndv = rel
            .columns()
            .cols()
            .iter()
            .map(|c| {
                match c {
                    Column::Int(v) => v.iter().collect::<FxHashSet<_>>().len(),
                    Column::Str(v) => v.iter().map(|s| s.as_ref()).collect::<FxHashSet<_>>().len(),
                    Column::Mixed(v) => v.iter().collect::<FxHashSet<_>>().len(),
                }
                .max(1)
            })
            .collect();
        TableStats {
            rows: rel.len(),
            ndv,
        }
    }

    /// NDV for a column index (1 when out of range, keeping estimates
    /// defined for computed columns).
    pub fn ndv_or_default(&self, col: usize) -> usize {
        self.ndv.get(col).copied().unwrap_or(1).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn ndv_counts() {
        let rel = Relation::from_rows(
            ["a", "b"],
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(1), Value::str("y")],
                vec![Value::Int(2), Value::str("x")],
            ],
        )
        .unwrap();
        let st = TableStats::compute(&rel);
        assert_eq!(st.rows, 3);
        assert_eq!(st.ndv, vec![2, 2]);
    }

    #[test]
    fn empty_relation_has_floor_ndv() {
        let rel = Relation::from_rows(["a"], Vec::<Vec<Value>>::new()).unwrap();
        let st = TableStats::compute(&rel);
        assert_eq!(st.rows, 0);
        assert_eq!(st.ndv_or_default(0), 1);
        assert_eq!(st.ndv_or_default(99), 1);
    }
}
