//! Per-relation statistics for cardinality estimation.

use crate::fxhash::{FxHashSet, FxHasher};
use crate::relation::{Column, Relation};
use crate::value::Value;
use std::hash::Hasher;

/// Row count plus per-column number-of-distinct-values (NDV) and
/// adjacent-pair joint NDV.
///
/// NDV drives the textbook equi-join estimate
/// `|L ⋈ R| ≈ |L|·|R| / max(ndv_L(k), ndv_R(k))` used by the greedy join
/// reorderer, mirroring what PostgreSQL's planner did for the paper's
/// translated queries. The joint counts exist for *correlated column
/// pairs*: the translation's descriptor encoding stores each world-set
/// descriptor as an adjacent `(Var, Rng)` pair, and a range value is
/// only meaningful within its variable — treating the two as
/// independent underestimates ψ-join survivors. Only adjacent pairs are
/// tracked: that covers every descriptor pair by construction
/// (`d0_var, d0_rng, d1_var, d1_rng, …`) at O(arity) extra sets.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Number of rows.
    pub rows: usize,
    /// Distinct value count per column (same order as the schema).
    pub ndv: Vec<usize>,
    /// Joint distinct count of each adjacent column pair:
    /// `pair_ndv[i]` = NDV of `(col i, col i + 1)` (length `arity - 1`).
    /// Counted over per-row pair digests — a 64-bit approximation, ample
    /// for estimation.
    pub pair_ndv: Vec<usize>,
    /// Total payload bytes of the relation (the Figure 9 accounting).
    /// With `rows`, this gives the average row width the memory-budget
    /// planner uses to predict which breakers will spill.
    pub bytes: usize,
    /// Per-column (min, max) bounds under the total `Value` order, or
    /// `None` for an empty relation. Folded from per-segment zone maps
    /// when the relation is built segmented; computed directly here
    /// otherwise. Range-predicate selectivity reads these.
    pub minmax: Vec<Option<(Value, Value)>>,
}

impl TableStats {
    /// Exact single-pass computation over the relation's columnar image
    /// (in-memory relations are small enough that sampling is not worth
    /// its complexity here). Typed columns count distincts without any
    /// `Value` hashing, and — since the catalog computes statistics
    /// eagerly at registration — this also builds and caches the image,
    /// so the first batched scan pays no conversion.
    pub fn compute(rel: &Relation) -> TableStats {
        let cols = rel.columns().cols();
        let ndv: Vec<usize> = cols
            .iter()
            .map(|c| {
                match c {
                    Column::Int(v) => v.iter().collect::<FxHashSet<_>>().len(),
                    Column::Str(v) => v.iter().map(|s| s.as_ref()).collect::<FxHashSet<_>>().len(),
                    Column::IntN(v, m) => {
                        let typed = (0..v.len())
                            .filter(|&i| !m.is_null(i))
                            .map(|i| v[i])
                            .collect::<FxHashSet<_>>()
                            .len();
                        typed + usize::from(m.null_count() > 0)
                    }
                    Column::StrN(v, m) => {
                        let typed = (0..v.len())
                            .filter(|&i| !m.is_null(i))
                            .map(|i| v[i].as_ref())
                            .collect::<FxHashSet<_>>()
                            .len();
                        typed + usize::from(m.null_count() > 0)
                    }
                    Column::Mixed(v) => v.iter().collect::<FxHashSet<_>>().len(),
                }
                .max(1)
            })
            .collect();
        let minmax: Vec<Option<(Value, Value)>> = cols
            .iter()
            .map(|c| {
                (0..rel.len()).map(|i| c.get(i)).fold(None, |acc, v| {
                    Some(match acc {
                        None => (v.clone(), v),
                        Some((lo, hi)) => {
                            if v < lo {
                                (v, hi)
                            } else if v > hi {
                                (lo, v)
                            } else {
                                (lo, hi)
                            }
                        }
                    })
                })
            })
            .collect();
        let pair_ndv: Vec<usize> = cols
            .windows(2)
            .map(|w| {
                let mut set: FxHashSet<u64> = FxHashSet::default();
                for row in 0..rel.len() {
                    let mut h = FxHasher::default();
                    w[0].hash_value_into(row, &mut h);
                    w[1].hash_value_into(row, &mut h);
                    set.insert(h.finish());
                }
                set.len().max(1)
            })
            .collect();
        TableStats {
            rows: rel.len(),
            ndv,
            pair_ndv,
            bytes: rel.size_bytes(),
            minmax,
        }
    }

    /// The (min, max) bounds of a column, when known and non-empty.
    pub fn minmax(&self, col: usize) -> Option<&(Value, Value)> {
        self.minmax.get(col).and_then(Option::as_ref)
    }

    /// Average payload bytes per row (a small constant floor keeps the
    /// estimate meaningful for empty or zero-width relations).
    pub fn avg_row_bytes(&self) -> f64 {
        if self.rows == 0 {
            16.0
        } else {
            (self.bytes as f64 / self.rows as f64).max(1.0)
        }
    }

    /// NDV for a column index (1 when out of range, keeping estimates
    /// defined for computed columns).
    pub fn ndv_or_default(&self, col: usize) -> usize {
        self.ndv.get(col).copied().unwrap_or(1).max(1)
    }

    /// Joint NDV of the adjacent pair `(a, a + 1)`; `None` for
    /// non-adjacent or out-of-range pairs.
    pub fn pair_ndv_adjacent(&self, a: usize, b: usize) -> Option<usize> {
        (b == a + 1)
            .then(|| self.pair_ndv.get(a).copied())?
            .map(|n| n.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn ndv_counts() {
        let rel = Relation::from_rows(
            ["a", "b"],
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(1), Value::str("y")],
                vec![Value::Int(2), Value::str("x")],
            ],
        )
        .unwrap();
        let st = TableStats::compute(&rel);
        assert_eq!(st.rows, 3);
        assert_eq!(st.ndv, vec![2, 2]);
    }

    #[test]
    fn pair_ndv_tracks_correlation() {
        // b is a function of a: joint NDV equals ndv(a), far below the
        // independence product ndv(a)·ndv(b)… while (b, c) really is
        // a cross product.
        let rows: Vec<Vec<Value>> = (0..60)
            .map(|i| {
                vec![
                    Value::Int(i % 6),
                    Value::Int((i % 6) * 10),
                    Value::Int(i % 5),
                ]
            })
            .collect();
        let rel = Relation::from_rows(["a", "b", "c"], rows).unwrap();
        let st = TableStats::compute(&rel);
        assert_eq!(st.ndv, vec![6, 6, 5]);
        assert_eq!(st.pair_ndv_adjacent(0, 1), Some(6)); // fully correlated
        assert_eq!(st.pair_ndv_adjacent(1, 2), Some(30)); // independent
        assert_eq!(st.pair_ndv_adjacent(0, 2), None); // non-adjacent
        assert_eq!(st.pair_ndv_adjacent(2, 3), None); // out of range
    }

    #[test]
    fn empty_relation_has_floor_ndv() {
        let rel = Relation::from_rows(["a"], Vec::<Vec<Value>>::new()).unwrap();
        let st = TableStats::compute(&rel);
        assert_eq!(st.rows, 0);
        assert_eq!(st.ndv_or_default(0), 1);
        assert_eq!(st.ndv_or_default(99), 1);
        assert_eq!(st.minmax(0), None);
    }

    #[test]
    fn minmax_and_nullable_ndv() {
        let rel = Relation::from_rows(
            ["a", "b"],
            vec![
                vec![Value::Int(7), Value::str("x")],
                vec![Value::Int(3), Value::Null],
                vec![Value::Int(7), Value::str("y")],
            ],
        )
        .unwrap();
        let st = TableStats::compute(&rel);
        assert_eq!(st.minmax(0), Some(&(Value::Int(3), Value::Int(7))));
        // Null sorts below every string, so it is column b's minimum.
        assert_eq!(st.minmax(1), Some(&(Value::Null, Value::str("y"))));
        assert_eq!(st.ndv, vec![2, 3]); // null counts as one distinct
    }
}
