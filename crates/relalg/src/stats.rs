//! Per-relation statistics for cardinality estimation.

use crate::fxhash::FxHashSet;
use crate::relation::Relation;

/// Row count plus per-column number-of-distinct-values (NDV).
///
/// NDV drives the textbook equi-join estimate
/// `|L ⋈ R| ≈ |L|·|R| / max(ndv_L(k), ndv_R(k))` used by the greedy join
/// reorderer, mirroring what PostgreSQL's planner did for the paper's
/// translated queries.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Number of rows.
    pub rows: usize,
    /// Distinct value count per column (same order as the schema).
    pub ndv: Vec<usize>,
}

impl TableStats {
    /// Exact single-pass computation (in-memory relations are small enough
    /// that sampling is not worth its complexity here).
    pub fn compute(rel: &Relation) -> TableStats {
        let arity = rel.schema().arity();
        let mut sets: Vec<FxHashSet<&crate::value::Value>> =
            (0..arity).map(|_| FxHashSet::default()).collect();
        for row in rel.rows() {
            for (i, v) in row.iter().enumerate() {
                sets[i].insert(v);
            }
        }
        TableStats {
            rows: rel.len(),
            ndv: sets.iter().map(|s| s.len().max(1)).collect(),
        }
    }

    /// NDV for a column index (1 when out of range, keeping estimates
    /// defined for computed columns).
    pub fn ndv_or_default(&self, col: usize) -> usize {
        self.ndv.get(col).copied().unwrap_or(1).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn ndv_counts() {
        let rel = Relation::from_rows(
            ["a", "b"],
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(1), Value::str("y")],
                vec![Value::Int(2), Value::str("x")],
            ],
        )
        .unwrap();
        let st = TableStats::compute(&rel);
        assert_eq!(st.rows, 3);
        assert_eq!(st.ndv, vec![2, 2]);
    }

    #[test]
    fn empty_relation_has_floor_ndv() {
        let rel = Relation::from_rows(["a"], Vec::<Vec<Value>>::new()).unwrap();
        let st = TableStats::compute(&rel);
        assert_eq!(st.rows, 0);
        assert_eq!(st.ndv_or_default(0), 1);
        assert_eq!(st.ndv_or_default(99), 1);
    }
}
