//! Compressed column segments with zone maps — the storage layer under
//! the executor.
//!
//! A [`SegmentedImage`] splits each relation column into fixed-size
//! segments (default 64Ki rows, `RELALG_SEGMENT_ROWS`) and encodes each
//! segment independently:
//!
//! * integer segments as **frame-of-reference + bit-packing**
//!   ([`SegEncoding::ForInt`]): deltas from the segment minimum, packed
//!   at the minimal bit width;
//! * string segments as **dictionary codes** ([`SegEncoding::DictStr`])
//!   over the segment's distinct `Arc<str>` values (which ride the
//!   global interner, so the dictionary itself is shared storage);
//! * anything else — and dictionaries not worth their overhead — falls
//!   back to the plain column representation ([`SegEncoding::Plain`]).
//!
//! Every (column, segment) pair carries a [`ZoneMap`] (min/max, null
//! count, exact per-segment NDV). Scans consult zone maps to skip whole
//! segments for sargable predicates before decoding anything; the same
//! statistics fold into [`TableStats`] so the optimizer's estimates
//! sharpen for free. Decoding a segment reproduces a [`Column`] whose
//! values hash and compare identically to the plain image's — segmented
//! execution is byte-for-byte the same as plain execution.
//!
//! [`SegmentedBuilder`] streams rows straight into segments (loaders use
//! it so the plain columnar image never needs to exist) and computes the
//! relation's [`TableStats`] as a byproduct of the same pass.

use crate::fxhash::{FxHashMap, FxHashSet, FxHasher};
use crate::relation::{Column, NullMask, Row};
use crate::stats::TableStats;
use crate::value::Value;
use std::hash::{Hash, Hasher};
use std::ops::Range;
use std::sync::Arc;

/// Per-(column, segment) summary statistics: the min/max bounds under
/// the total [`Value`] order (`Null < Bool < Int < Str` — a segment
/// containing nulls has `min == Null`), the null count, and the exact
/// number of distinct values in the segment.
#[derive(Clone, Debug)]
pub struct ZoneMap {
    /// Smallest value in the segment (under the total `Value` order).
    pub min: Value,
    /// Largest value in the segment.
    pub max: Value,
    /// Number of nulls in the segment.
    pub null_count: usize,
    /// Distinct values in the segment (exact; segments are small).
    pub ndv: usize,
}

impl ZoneMap {
    /// Summarize a non-empty slice of values.
    fn of(vals: &[Value]) -> ZoneMap {
        debug_assert!(!vals.is_empty());
        let mut min = &vals[0];
        let mut max = &vals[0];
        let mut null_count = 0usize;
        let mut distinct: FxHashSet<u64> = FxHashSet::default();
        for v in vals {
            if *v < *min {
                min = v;
            }
            if *v > *max {
                max = v;
            }
            if v.is_null() {
                null_count += 1;
            }
            distinct.insert(value_digest(v));
        }
        ZoneMap {
            min: min.clone(),
            max: max.clone(),
            null_count,
            ndv: distinct.len(),
        }
    }

    /// Can *any* row of a segment with these bounds satisfy
    /// `row_value op lit`? `false` means the whole segment is provably
    /// predicate-free and a scan may skip it without decoding. The test
    /// is conservative under the total cross-type `Value` order, so it
    /// stays sound for null-padded and mixed segments (a segment holding
    /// nulls has `min == Null < Int`, which keeps e.g. `< k` segments
    /// alive — the filter above the scan still decides per row).
    pub fn may_match(&self, op: crate::expr::CmpOp, lit: &Value) -> bool {
        use crate::expr::CmpOp;
        match op {
            CmpOp::Eq => self.min <= *lit && *lit <= self.max,
            CmpOp::Ne => !(self.min == self.max && self.min == *lit),
            CmpOp::Lt => self.min < *lit,
            CmpOp::Le => self.min <= *lit,
            CmpOp::Gt => self.max > *lit,
            CmpOp::Ge => self.max >= *lit,
        }
    }
}

/// The physical encoding of one column segment.
#[derive(Clone, Debug)]
pub enum SegEncoding {
    /// Frame-of-reference + bit-packed integers: `value = base + delta`,
    /// deltas packed at `width` bits (0 bits when the segment is
    /// constant). Null rows carry a zero delta and are flagged in
    /// `nulls`.
    ForInt {
        /// The frame of reference (the segment's smallest integer).
        base: i64,
        /// Bits per packed delta.
        width: u8,
        /// Little-endian bit-packed deltas.
        packed: Arc<[u64]>,
        /// Null bitmap, when the segment has nulls.
        nulls: Option<NullMask>,
    },
    /// Dictionary-coded strings: `value = dict[code]`, codes packed at
    /// `width` bits. The dictionary entries are the segment's distinct
    /// interned `Arc<str>`s in first-occurrence order.
    DictStr {
        /// Distinct values, indexed by code.
        dict: Arc<[Arc<str>]>,
        /// Bits per packed code.
        width: u8,
        /// Little-endian bit-packed codes.
        packed: Arc<[u64]>,
        /// Null bitmap, when the segment has nulls (null rows code 0).
        nulls: Option<NullMask>,
    },
    /// Transparent fallback: the plain column (mixed-type segments, or
    /// string segments whose dictionary would not pay for itself).
    Plain(Arc<Column>),
}

/// One encoded column segment plus its zone map.
#[derive(Clone, Debug)]
pub struct ColumnSegment {
    rows: usize,
    zone: ZoneMap,
    enc: SegEncoding,
}

impl ColumnSegment {
    /// Encode a non-empty run of values.
    pub fn encode(vals: Vec<Value>) -> ColumnSegment {
        let rows = vals.len();
        let zone = ZoneMap::of(&vals);
        let ints = vals.iter().filter(|v| matches!(v, Value::Int(_))).count();
        let strs = vals.iter().filter(|v| matches!(v, Value::Str(_))).count();
        if ints > 0 && ints + zone.null_count == rows {
            return ColumnSegment {
                rows,
                enc: encode_for_int(&vals),
                zone,
            };
        }
        if strs > 0 && strs + zone.null_count == rows {
            if let Some(enc) = encode_dict_str(&vals, &zone) {
                return ColumnSegment { rows, zone, enc };
            }
        }
        ColumnSegment {
            rows,
            zone,
            enc: SegEncoding::Plain(Arc::new(Column::from_values(vals))),
        }
    }

    /// Reassemble a segment from its parts — the disk codec's
    /// deserialization entry point. The caller is responsible for the
    /// parts being mutually consistent (the on-disk format stores the
    /// zone map next to the encoding it summarizes).
    pub(crate) fn from_parts(rows: usize, zone: ZoneMap, enc: SegEncoding) -> ColumnSegment {
        ColumnSegment { rows, zone, enc }
    }

    /// Number of rows in the segment.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The segment's zone map.
    pub fn zone(&self) -> &ZoneMap {
        &self.zone
    }

    /// The segment's encoding.
    pub fn encoding(&self) -> &SegEncoding {
        &self.enc
    }

    /// Decode back into a column. Dictionary segments decode into
    /// `Arc<str>` clones of the dictionary entries (an `Arc` bump per
    /// row — no string bytes are copied or re-materialized), so the
    /// result hashes and compares exactly like the plain image.
    pub fn decode(&self) -> Arc<Column> {
        match &self.enc {
            SegEncoding::ForInt {
                base,
                width,
                packed,
                nulls,
            } => {
                let vals: Vec<i64> = (0..self.rows)
                    .map(|i| (*base as i128 + unpack_at(packed, *width, i) as i128) as i64)
                    .collect();
                Arc::new(match nulls {
                    Some(mask) => Column::IntN(vals, mask.clone()),
                    None => Column::Int(vals),
                })
            }
            SegEncoding::DictStr {
                dict,
                width,
                packed,
                nulls,
            } => {
                let vals: Vec<Arc<str>> = (0..self.rows)
                    .map(|i| Arc::clone(&dict[unpack_at(packed, *width, i) as usize]))
                    .collect();
                Arc::new(match nulls {
                    Some(mask) => Column::StrN(vals, mask.clone()),
                    None => Column::Str(vals),
                })
            }
            SegEncoding::Plain(col) => Arc::clone(col),
        }
    }

    /// Approximate encoded footprint in bytes (packed words, dictionary
    /// payloads, plain fallbacks).
    pub fn encoded_bytes(&self) -> usize {
        match &self.enc {
            SegEncoding::ForInt { packed, .. } => 16 + packed.len() * 8,
            SegEncoding::DictStr { dict, packed, .. } => {
                packed.len() * 8 + dict.iter().map(|s| s.len()).sum::<usize>()
            }
            SegEncoding::Plain(col) => decoded_col_bytes(col),
        }
    }

    /// Approximate decoded footprint in bytes (what a scan pays to hold
    /// this segment resident — the [`crate::exec::ExecStats`]
    /// `decoded_bytes` unit).
    pub fn decoded_bytes(&self) -> usize {
        match &self.enc {
            SegEncoding::ForInt { .. } => self.rows * 8,
            SegEncoding::DictStr { .. } => self.rows * 16,
            SegEncoding::Plain(_) => 0, // shared, nothing new materializes
        }
    }
}

/// Approximate resident bytes of a decoded column.
fn decoded_col_bytes(col: &Column) -> usize {
    match col {
        Column::Int(v) => v.len() * 8,
        Column::IntN(v, _) => v.len() * 8 + v.len() / 8,
        Column::Str(v) => v.len() * 16,
        Column::StrN(v, _) => v.len() * 16 + v.len() / 8,
        Column::Mixed(v) => v.len() * 24,
    }
}

fn encode_for_int(vals: &[Value]) -> SegEncoding {
    let mut base = i64::MAX;
    let mut top = i64::MIN;
    for v in vals {
        if let Value::Int(x) = v {
            base = base.min(*x);
            top = top.max(*x);
        }
    }
    // Deltas in i128 so `top - base` cannot overflow (e.g. i64::MIN..MAX).
    let max_delta = (top as i128 - base as i128) as u128;
    let width = bits_for(max_delta as u64);
    let mut nulls = None;
    let deltas: Vec<u64> = vals
        .iter()
        .enumerate()
        .map(|(i, v)| match v {
            Value::Int(x) => (*x as i128 - base as i128) as u64,
            _ => {
                nulls
                    .get_or_insert_with(|| NullMask::new(vals.len()))
                    .set_null(i);
                0
            }
        })
        .collect();
    SegEncoding::ForInt {
        base,
        width,
        packed: pack(&deltas, width).into(),
        nulls,
    }
}

/// Dictionary-encode a string segment, or `None` when the dictionary
/// would not pay for itself (more than half the rows are distinct).
fn encode_dict_str(vals: &[Value], zone: &ZoneMap) -> Option<SegEncoding> {
    let mut codes_by_str: FxHashMap<Arc<str>, u64> = FxHashMap::default();
    let mut dict: Vec<Arc<str>> = Vec::new();
    let mut nulls = None;
    let mut codes: Vec<u64> = Vec::with_capacity(vals.len());
    for (i, v) in vals.iter().enumerate() {
        match v {
            Value::Str(s) => {
                let code = *codes_by_str.entry(Arc::clone(s)).or_insert_with(|| {
                    dict.push(Arc::clone(s));
                    dict.len() as u64 - 1
                });
                codes.push(code);
            }
            _ => {
                nulls
                    .get_or_insert_with(|| NullMask::new(vals.len()))
                    .set_null(i);
                codes.push(0);
            }
        }
    }
    if dict.len() * 2 > vals.len() {
        return None; // mostly-unique strings: plain is cheaper
    }
    debug_assert_eq!(dict.len(), zone.ndv - usize::from(zone.null_count > 0));
    let width = bits_for(dict.len() as u64 - 1);
    Some(SegEncoding::DictStr {
        dict: dict.into(),
        width,
        packed: pack(&codes, width).into(),
        nulls,
    })
}

/// Minimal bit width able to represent `max` (0 for a constant run).
fn bits_for(max: u64) -> u8 {
    if max == 0 {
        0
    } else {
        (64 - max.leading_zeros()) as u8
    }
}

/// Pack `vals` (each `< 2^width`) at `width` bits apiece, little-endian
/// within and across `u64` words.
fn pack(vals: &[u64], width: u8) -> Vec<u64> {
    if width == 0 {
        return Vec::new();
    }
    let w = width as usize;
    let mut out = vec![0u64; (vals.len() * w).div_ceil(64)];
    let mut bit = 0usize;
    for &v in vals {
        let (word, off) = (bit / 64, bit % 64);
        out[word] |= v << off;
        if off + w > 64 {
            // Straddles a word boundary; `off > 0` here, so the shift
            // below is always in range.
            out[word + 1] |= v >> (64 - off);
        }
        bit += w;
    }
    out
}

/// Read the `idx`-th `width`-bit value out of a [`pack`]ed buffer.
#[inline]
fn unpack_at(packed: &[u64], width: u8, idx: usize) -> u64 {
    if width == 0 {
        return 0;
    }
    let w = width as usize;
    let bit = idx * w;
    let (word, off) = (bit / 64, bit % 64);
    let mut v = packed[word] >> off;
    if off + w > 64 {
        v |= packed[word + 1] << (64 - off);
    }
    if w < 64 {
        v &= (1u64 << w) - 1;
    }
    v
}

/// One decoded segment: the columns covering rows
/// `[start, start + len)`, `Arc`-shared so batch columns can outlive the
/// provider's cache slot that produced them.
#[derive(Clone, Debug)]
pub struct DecodedSegment {
    /// First row covered.
    pub start: usize,
    /// Rows covered.
    pub len: usize,
    /// One decoded column per schema column.
    pub cols: Vec<Arc<Column>>,
    /// Approximate bytes materialized by decoding this segment.
    pub bytes: usize,
}

/// The compressed column-segment image of a relation: `cols[c][s]` is
/// segment `s` of column `c`, every column split at the same fixed
/// `seg_rows` boundary (the last segment may be short). Carries the
/// [`TableStats`] computed during the build, so registering a relation
/// in segmented storage never touches the plain columnar image.
#[derive(Debug)]
pub struct SegmentedImage {
    seg_rows: usize,
    len: usize,
    cols: Vec<Vec<ColumnSegment>>,
    stats: TableStats,
}

impl SegmentedImage {
    /// Build from row storage (one streaming pass).
    pub fn build(arity: usize, rows: &[Row], seg_rows: usize) -> SegmentedImage {
        let mut b = SegmentedBuilder::new(arity, seg_rows);
        for r in rows {
            b.push(r);
        }
        b.finish()
    }

    /// Rows per segment.
    pub fn seg_rows(&self) -> usize {
        self.seg_rows
    }

    /// Total rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Number of segments.
    pub fn seg_count(&self) -> usize {
        self.len.div_ceil(self.seg_rows)
    }

    /// The row range `[start, end)` of segment `seg`.
    pub fn seg_bounds(&self, seg: usize) -> Range<usize> {
        let start = (seg * self.seg_rows).min(self.len);
        start..(start + self.seg_rows).min(self.len)
    }

    /// The zone map of (column `col`, segment `seg`).
    pub fn zone(&self, col: usize, seg: usize) -> &ZoneMap {
        self.cols[col][seg].zone()
    }

    /// The encoded segments of column `col`.
    pub fn col_segments(&self, col: usize) -> &[ColumnSegment] {
        &self.cols[col]
    }

    /// Decode segment `seg` across all columns.
    pub fn decode(&self, seg: usize) -> DecodedSegment {
        let bounds = self.seg_bounds(seg);
        DecodedSegment {
            start: bounds.start,
            len: bounds.len(),
            cols: self.cols.iter().map(|c| c[seg].decode()).collect(),
            bytes: self.cols.iter().map(|c| c[seg].decoded_bytes()).sum(),
        }
    }

    /// The table statistics computed while building the image.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Approximate encoded footprint in bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.cols
            .iter()
            .flat_map(|c| c.iter())
            .map(ColumnSegment::encoded_bytes)
            .sum()
    }
}

/// Streaming builder: push rows, get a [`SegmentedImage`]. Each full
/// `seg_rows` chunk is encoded and released as it completes, and the
/// global statistics ([`TableStats`]: per-column and adjacent-pair NDV
/// digest sets, payload bytes, min/max folded from the zone maps) are
/// accumulated in the same pass — loaders stream generation straight
/// into segments without ever materializing a whole-relation column.
pub struct SegmentedBuilder {
    seg_rows: usize,
    cur: Vec<Vec<Value>>,
    in_cur: usize,
    cols: Vec<Vec<ColumnSegment>>,
    len: usize,
    bytes: usize,
    col_digests: Vec<FxHashSet<u64>>,
    pair_digests: Vec<FxHashSet<u64>>,
}

impl SegmentedBuilder {
    /// Builder over `arity` columns at `seg_rows` rows per segment
    /// (floored at 1).
    pub fn new(arity: usize, seg_rows: usize) -> SegmentedBuilder {
        SegmentedBuilder {
            seg_rows: seg_rows.max(1),
            cur: vec![Vec::new(); arity],
            in_cur: 0,
            cols: vec![Vec::new(); arity],
            len: 0,
            bytes: 0,
            col_digests: vec![FxHashSet::default(); arity],
            pair_digests: vec![FxHashSet::default(); arity.saturating_sub(1)],
        }
    }

    /// Append one row (must match the builder's arity).
    pub fn push(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.cur.len());
        for (c, v) in row.iter().enumerate() {
            self.bytes += v.size_bytes();
            self.col_digests[c].insert(value_digest(v));
            self.cur[c].push(v.clone());
        }
        for c in 0..row.len().saturating_sub(1) {
            let mut h = FxHasher::default();
            row[c].hash(&mut h);
            row[c + 1].hash(&mut h);
            self.pair_digests[c].insert(h.finish());
        }
        self.in_cur += 1;
        self.len += 1;
        if self.in_cur == self.seg_rows {
            self.flush();
        }
    }

    fn flush(&mut self) {
        for (col, seg) in self.cols.iter_mut().zip(&mut self.cur) {
            col.push(ColumnSegment::encode(std::mem::take(seg)));
        }
        self.in_cur = 0;
    }

    /// Finish: encode the trailing partial segment and assemble the
    /// image with its statistics.
    pub fn finish(mut self) -> SegmentedImage {
        if self.in_cur > 0 {
            self.flush();
        }
        let minmax = self
            .cols
            .iter()
            .map(|segs| {
                segs.iter().map(ColumnSegment::zone).fold(None, |acc, z| {
                    Some(match acc {
                        None => (z.min.clone(), z.max.clone()),
                        Some((lo, hi)) => (
                            if z.min < lo { z.min.clone() } else { lo },
                            if z.max > hi { z.max.clone() } else { hi },
                        ),
                    })
                })
            })
            .collect();
        let stats = TableStats {
            rows: self.len,
            ndv: self.col_digests.iter().map(|s| s.len().max(1)).collect(),
            pair_ndv: self.pair_digests.iter().map(|s| s.len().max(1)).collect(),
            bytes: self.bytes,
            minmax,
        };
        SegmentedImage {
            seg_rows: self.seg_rows,
            len: self.len,
            cols: self.cols,
            stats,
        }
    }
}

/// 64-bit FxHash digest of a value (the NDV approximation unit). Shared
/// with the disk writer's streaming statistics pass.
pub(crate) fn value_digest(v: &Value) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::value::intern;

    fn roundtrip(vals: Vec<Value>) -> (ColumnSegment, Arc<Column>) {
        let seg = ColumnSegment::encode(vals);
        let col = seg.decode();
        (seg, col)
    }

    #[test]
    fn for_int_roundtrips_and_packs_tight() {
        let vals: Vec<Value> = (0..100).map(|i| Value::Int(1000 + i % 7)).collect();
        let (seg, col) = roundtrip(vals.clone());
        let SegEncoding::ForInt { base, width, .. } = seg.encoding() else {
            panic!("int run encodes as FOR");
        };
        assert_eq!(*base, 1000);
        assert_eq!(*width, 3); // deltas 0..=6
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(col.get(i), *v);
        }
        assert_eq!(seg.zone().min, Value::Int(1000));
        assert_eq!(seg.zone().max, Value::Int(1006));
        assert_eq!(seg.zone().ndv, 7);
        assert_eq!(seg.zone().null_count, 0);
    }

    #[test]
    fn for_int_handles_extreme_and_constant_runs() {
        // Full i64 range: the delta spans 2^64 - 1 and needs 64 bits.
        let vals = vec![
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Int(0),
            Value::Int(-1),
        ];
        let (seg, col) = roundtrip(vals.clone());
        let SegEncoding::ForInt { width, .. } = seg.encoding() else {
            panic!("FOR");
        };
        assert_eq!(*width, 64);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(col.get(i), *v);
        }
        // A constant run packs to zero payload bits.
        let (seg, col) = roundtrip(vec![Value::Int(42); 10]);
        let SegEncoding::ForInt { width, packed, .. } = seg.encoding() else {
            panic!("FOR");
        };
        assert_eq!(*width, 0);
        assert!(packed.is_empty());
        assert_eq!(col.get(9), Value::Int(42));
    }

    #[test]
    fn for_int_carries_nulls_in_the_mask() {
        let vals = vec![
            Value::Int(5),
            Value::Null,
            Value::Int(3),
            Value::Null,
            Value::Int(9),
        ];
        let (seg, col) = roundtrip(vals.clone());
        assert_eq!(seg.zone().null_count, 2);
        assert_eq!(seg.zone().min, Value::Null); // Null < Int
        assert_eq!(seg.zone().max, Value::Int(9));
        assert!(matches!(col.as_ref(), Column::IntN(..)));
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(col.get(i), *v);
        }
    }

    #[test]
    fn dict_str_rides_the_interner() {
        let vals: Vec<Value> = (0..60)
            .map(|i| Value::Str(intern(["AIR", "RAIL", "TRUCK"][i % 3])))
            .collect();
        let (seg, col) = roundtrip(vals.clone());
        let SegEncoding::DictStr { dict, width, .. } = seg.encoding() else {
            panic!("low-cardinality strings encode as a dictionary");
        };
        assert_eq!(dict.len(), 3);
        assert_eq!(*width, 2);
        // Decoded values share the dictionary's interned allocations.
        let Column::Str(decoded) = col.as_ref() else {
            panic!("typed decode");
        };
        assert!(Arc::ptr_eq(&decoded[0], &intern("AIR")));
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(col.get(i), *v);
        }
        assert_eq!(seg.zone().ndv, 3);
    }

    #[test]
    fn unique_strings_fall_back_to_plain() {
        let vals: Vec<Value> = (0..20).map(|i| Value::str(format!("key-{i}"))).collect();
        let (seg, col) = roundtrip(vals.clone());
        assert!(matches!(seg.encoding(), SegEncoding::Plain(_)));
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(col.get(i), *v);
        }
    }

    #[test]
    fn mixed_segments_fall_back_to_plain() {
        let vals = vec![Value::Bool(true), Value::Int(1), Value::Null];
        let (seg, col) = roundtrip(vals.clone());
        assert!(matches!(seg.encoding(), SegEncoding::Plain(_)));
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(col.get(i), *v);
        }
        assert_eq!(seg.zone().min, Value::Null);
        assert_eq!(seg.zone().max, Value::Int(1));
    }

    #[test]
    fn nullable_dict_strings_roundtrip() {
        let vals = vec![
            Value::Str(intern("x")),
            Value::Null,
            Value::Str(intern("x")),
            Value::Str(intern("y")),
        ];
        let (seg, col) = roundtrip(vals.clone());
        assert!(matches!(seg.encoding(), SegEncoding::DictStr { .. }));
        assert!(matches!(col.as_ref(), Column::StrN(..)));
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(col.get(i), *v);
        }
    }

    #[test]
    fn bit_packing_straddles_word_boundaries() {
        // Width 5 over 40 values crosses several u64 boundaries.
        let vals: Vec<u64> = (0..40).map(|i| (i * 7) % 32).collect();
        let packed = pack(&vals, 5);
        assert_eq!(packed.len(), (40 * 5usize).div_ceil(64));
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(unpack_at(&packed, 5, i), v, "index {i}");
        }
        // Width 64 is the identity.
        let vals = vec![u64::MAX, 0, 1, u64::MAX - 1];
        let packed = pack(&vals, 64);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(unpack_at(&packed, 64, i), v);
        }
    }

    #[test]
    fn zone_maps_prune_exactly_the_impossible_ranges() {
        let z = ZoneMap {
            min: Value::Int(10),
            max: Value::Int(20),
            null_count: 0,
            ndv: 11,
        };
        assert!(z.may_match(CmpOp::Eq, &Value::Int(15)));
        assert!(!z.may_match(CmpOp::Eq, &Value::Int(9)));
        assert!(!z.may_match(CmpOp::Eq, &Value::Int(21)));
        assert!(!z.may_match(CmpOp::Lt, &Value::Int(10)));
        assert!(z.may_match(CmpOp::Lt, &Value::Int(11)));
        assert!(z.may_match(CmpOp::Le, &Value::Int(10)));
        assert!(!z.may_match(CmpOp::Le, &Value::Int(9)));
        assert!(!z.may_match(CmpOp::Gt, &Value::Int(20)));
        assert!(z.may_match(CmpOp::Gt, &Value::Int(19)));
        assert!(z.may_match(CmpOp::Ge, &Value::Int(20)));
        assert!(!z.may_match(CmpOp::Ge, &Value::Int(21)));
        assert!(z.may_match(CmpOp::Ne, &Value::Int(15)));
        // Ne only prunes constant segments equal to the literal.
        let konst = ZoneMap {
            min: Value::Int(5),
            max: Value::Int(5),
            null_count: 0,
            ndv: 1,
        };
        assert!(!konst.may_match(CmpOp::Ne, &Value::Int(5)));
        assert!(konst.may_match(CmpOp::Ne, &Value::Int(6)));
        // A null-bearing segment has min == Null < any Int: `< k` never
        // prunes it (the nulls might... not match, but pruning must be
        // sound, and the filter above decides).
        let padded = ZoneMap {
            min: Value::Null,
            max: Value::Int(3),
            null_count: 1,
            ndv: 2,
        };
        assert!(padded.may_match(CmpOp::Lt, &Value::Int(0)));
        // Cross-type: strings sort above ints, so `> "a"` prunes an
        // all-int segment.
        assert!(!z.may_match(CmpOp::Gt, &Value::str("a")));
        assert!(z.may_match(CmpOp::Lt, &Value::str("a")));
    }

    #[test]
    fn segmented_image_partitions_rows_and_folds_stats() {
        let rows: Vec<Row> = (0..25)
            .map(|i| {
                vec![
                    Value::Int(i % 10),
                    Value::Str(intern(["red", "green"][i as usize % 2])),
                ]
                .into_boxed_slice()
            })
            .collect();
        let img = SegmentedImage::build(2, &rows, 8);
        assert_eq!(img.len(), 25);
        assert_eq!(img.seg_count(), 4);
        assert_eq!(img.seg_bounds(0), 0..8);
        assert_eq!(img.seg_bounds(3), 24..25);
        assert_eq!(img.arity(), 2);
        // Decoded segments reproduce the rows exactly.
        for seg in 0..img.seg_count() {
            let d = img.decode(seg);
            assert_eq!(d.start, seg * 8);
            for pos in 0..d.len {
                for (c, col) in d.cols.iter().enumerate() {
                    assert_eq!(col.get(pos), rows[d.start + pos][c]);
                }
            }
        }
        // Stats come out of the same pass as the build.
        let st = img.stats();
        assert_eq!(st.rows, 25);
        assert_eq!(st.ndv, vec![10, 2]);
        assert_eq!(st.minmax[0], Some((Value::Int(0), Value::Int(9))));
        assert_eq!(
            st.minmax[1],
            Some((Value::Str(intern("green")), Value::Str(intern("red"))))
        );
        // Zone maps cover each segment's own range: segment 0 holds
        // rows 0..8, whose values are 0..=7.
        assert_eq!(img.zone(0, 0).min, Value::Int(0));
        assert_eq!(img.zone(0, 0).max, Value::Int(7));
        // The last segment holds only row 24 (value 4).
        assert_eq!(img.zone(0, 3).min, Value::Int(4));
        assert_eq!(img.zone(0, 3).max, Value::Int(4));
        assert!(img.encoded_bytes() > 0);
    }

    #[test]
    fn empty_and_zero_arity_images_are_fine() {
        let img = SegmentedImage::build(2, &[], 8);
        assert_eq!(img.len(), 0);
        assert_eq!(img.seg_count(), 0);
        assert!(img.is_empty());
        let rows: Vec<Row> = (0..3).map(|_| Vec::new().into_boxed_slice()).collect();
        let img = SegmentedImage::build(0, &rows, 2);
        assert_eq!(img.len(), 3);
        assert_eq!(img.seg_count(), 2);
        assert_eq!(img.decode(0).cols.len(), 0);
    }
}
