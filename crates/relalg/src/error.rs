//! Error type shared by all engine components, plus the boilerplate
//! macro the higher layers reuse for their own error enums.

/// Implements `Display`, `std::error::Error` and a `Result<T>` alias for
/// an error enum from a variant → format-string table, so each crate's
/// `error.rs` is data, not repeated impl blocks.
///
/// Struct variants list their fields in braces, tuple variants bind
/// their payloads in parentheses; the format string captures those
/// bindings. An optional trailing `source: Variant` names a tuple
/// variant wrapping an underlying error, wired into
/// [`std::error::Error::source`].
///
/// ```
/// use std::fmt;
/// #[derive(Debug)]
/// pub enum MyError {
///     Broken { what: String },
///     Engine(urel_relalg::Error),
/// }
/// urel_relalg::impl_error_boilerplate! {
///     MyError {
///         Broken { what } => "broken: {what}",
///         Engine(e) => "engine: {e}",
///     }
///     source: Engine
/// }
/// let e = MyError::Broken { what: "x".into() };
/// assert_eq!(e.to_string(), "broken: x");
/// ```
#[macro_export]
macro_rules! impl_error_boilerplate {
    (
        $err:ident {
            $( $variant:ident
               $( { $($field:ident),+ $(,)? } )?
               $( ( $($bind:ident),+ $(,)? ) )?
               => $fmt:literal
            ),+ $(,)?
        }
        $( source: $src:ident )?
    ) => {
        impl ::std::fmt::Display for $err {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                match self {
                    $(
                        Self::$variant
                            $( { $($field),+ } )?
                            $( ( $($bind),+ ) )?
                        => write!(f, $fmt),
                    )+
                }
            }
        }

        impl ::std::error::Error for $err {
            $(
                fn source(&self) -> Option<&(dyn ::std::error::Error + 'static)> {
                    match self {
                        Self::$src(e) => Some(e),
                        _ => None,
                    }
                }
            )?
        }

        /// Result alias for this crate.
        pub type Result<T> = ::std::result::Result<T, $err>;
    };
}

/// Engine error. Every failure carries enough context to locate the
/// offending plan node, column or relation by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A column reference did not resolve against a schema.
    UnknownColumn { name: String, schema: String },
    /// A column reference matched more than one schema column.
    AmbiguousColumn { name: String, schema: String },
    /// A named relation was not present in the catalog.
    UnknownRelation(String),
    /// Row arity did not match the schema arity.
    ArityMismatch { expected: usize, got: usize },
    /// Positional schema mismatch for union/difference.
    SchemaMismatch { left: String, right: String },
    /// A predicate evaluated to a non-boolean value.
    TypeError(String),
    /// An I/O operation failed after exhausting any retries — disk
    /// store reads/writes, spill runs, buffer-pool leases — whether the
    /// failure was real or injected by [`crate::fault`].
    Io(String),
    /// The query was cancelled (explicitly or by deadline) before it
    /// completed; all resources it held have been released.
    Cancelled(String),
    /// Anything else (guard rails, caps, invariants).
    Invalid(String),
}

crate::impl_error_boilerplate! {
    Error {
        UnknownColumn { name, schema } => "unknown column `{name}` in schema [{schema}]",
        AmbiguousColumn { name, schema } => "ambiguous column `{name}` in schema [{schema}]",
        UnknownRelation(name) => "unknown relation `{name}`",
        ArityMismatch { expected, got } => "row arity {got} does not match schema arity {expected}",
        SchemaMismatch { left, right } => "set operation over incompatible schemas [{left}] vs [{right}]",
        TypeError(msg) => "type error: {msg}",
        Io(msg) => "i/o error: {msg}",
        Cancelled(msg) => "cancelled: {msg}",
        Invalid(msg) => "invalid operation: {msg}",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_every_variant() {
        let cases: Vec<(Error, &str)> = vec![
            (
                Error::UnknownColumn {
                    name: "a".into(),
                    schema: "b, c".into(),
                },
                "unknown column `a` in schema [b, c]",
            ),
            (Error::UnknownRelation("r".into()), "unknown relation `r`"),
            (
                Error::ArityMismatch {
                    expected: 2,
                    got: 3,
                },
                "row arity 3 does not match schema arity 2",
            ),
            (Error::TypeError("boom".into()), "type error: boom"),
        ];
        for (e, want) in cases {
            assert_eq!(e.to_string(), want);
        }
    }
}
