//! Error type shared by all engine components.

use std::fmt;

/// Engine error. Every failure carries enough context to locate the
/// offending plan node, column or relation by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A column reference did not resolve against a schema.
    UnknownColumn { name: String, schema: String },
    /// A column reference matched more than one schema column.
    AmbiguousColumn { name: String, schema: String },
    /// A named relation was not present in the catalog.
    UnknownRelation(String),
    /// Row arity did not match the schema arity.
    ArityMismatch { expected: usize, got: usize },
    /// Positional schema mismatch for union/difference.
    SchemaMismatch { left: String, right: String },
    /// A predicate evaluated to a non-boolean value.
    TypeError(String),
    /// Anything else (guard rails, caps, invariants).
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownColumn { name, schema } => {
                write!(f, "unknown column `{name}` in schema [{schema}]")
            }
            Error::AmbiguousColumn { name, schema } => {
                write!(f, "ambiguous column `{name}` in schema [{schema}]")
            }
            Error::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            Error::ArityMismatch { expected, got } => {
                write!(f, "row arity {got} does not match schema arity {expected}")
            }
            Error::SchemaMismatch { left, right } => {
                write!(f, "set operation over incompatible schemas [{left}] vs [{right}]")
            }
            Error::TypeError(msg) => write!(f, "type error: {msg}"),
            Error::Invalid(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, Error>;
