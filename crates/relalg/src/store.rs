//! The disk half of the segmented store: page files of encoded column
//! segments, a checksummed per-relation manifest, and a buffer pool
//! shared across relations.
//!
//! A relation persists as two files in a directory:
//!
//! * **`<name>.seg`** — the page file: one self-describing block per
//!   (column, segment), in segment-major order so fetching one segment
//!   reads contiguous bytes. Every block starts on a [`PAGE`] boundary
//!   and serializes the *encoded* form ([`SegEncoding`] — bit-packed
//!   frame-of-reference integers, dictionary codes, or tagged plain
//!   values), so the on-disk footprint is the compressed one.
//! * **`<name>.manifest`** — magic + version, the segment geometry,
//!   the exact page-file length, column names, the [`TableStats`] the
//!   writer accumulated while streaming, and a directory of
//!   `(offset, len, crc32)` block
//!   references each paired with its [`ZoneMap`] — zone-map skipping
//!   works *without touching the page file*. The manifest carries a
//!   trailing checksum over itself.
//!
//! [`DiskImage::open`] validates everything eagerly — magic, version,
//!   manifest checksum, directory bounds against the page file's length,
//!   and every block's checksum and parseability — so truncated files,
//!   torn final pages, bit flips and stale manifests all surface as
//!   [`Error`] at open time. Post-open reads can still fail (a file
//!   modified underneath a running process, or a fault injected by
//!   [`crate::fault`]); those surface as clean [`Error::Io`] after
//!   bounded transient retries — never as a panic or a wrong answer.
//!
//! Scans reach segments through a [`DiskImageProvider`] whose fetches
//! lease slots from a [`BufferPool`] **shared across all relations**
//! (keyed by a process-unique image id): the pool holds at most `cap`
//! decoded segments under clock eviction, disk reads happen outside the
//! pool lock behind a per-segment in-flight latch, and
//! [`IoCounters`] observes pages read plus pool hits/misses.

use crate::error::{Error, Result};
use crate::fault::{self, FaultInjector, FaultKind};
use crate::provider::{ImageProvider, IoCounters};
use crate::relation::{Column, NullMask, Row};
use crate::segment::{
    value_digest, ColumnSegment, DecodedSegment, SegEncoding, SegmentedImage, ZoneMap,
};
use crate::stats::TableStats;
use crate::value::{intern, Value};
use std::fmt::Debug;
use std::fs::{self, File};
use std::hash::{Hash, Hasher};
use std::io::{self, Write as _};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Page size: blocks in the page file start on this alignment, and
/// [`IoCounters::pages_read`] counts in these units.
pub const PAGE: usize = 4096;

/// Manifest magic ("U-relation segments, format 1").
const MAGIC: &[u8; 8] = b"URELSEG1";

/// Manifest format version.
const VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// CRC32 (IEEE), table-driven — no dependencies.
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC32 (IEEE 802.3) of a byte slice.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Byte codec: a growable encoder and a bounds-checked decoder.
// ---------------------------------------------------------------------------

/// Append-only byte encoder for blocks and manifests.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(u32::try_from(s.len()).expect("stored string fits u32"));
        self.buf.extend_from_slice(s.as_bytes());
    }
    /// Tagged value, same tag scheme as the spill-run codec.
    fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Bool(false) => self.u8(1),
            Value::Bool(true) => self.u8(2),
            Value::Int(i) => {
                self.u8(3);
                self.i64(*i);
            }
            Value::Str(s) => {
                self.u8(4);
                self.str(s);
            }
        }
    }
    /// A `u64`-word slice, length-prefixed (bit-packed payloads).
    fn words(&mut self, w: &[u64]) {
        self.u32(u32::try_from(w.len()).expect("packed words fit u32"));
        for &x in w {
            self.u64(x);
        }
    }
    /// A null bitmap: one bit per row, length implied by the caller.
    fn nulls(&mut self, rows: usize, mask: &Option<NullMask>) {
        match mask {
            None => self.u8(0),
            Some(m) => {
                self.u8(1);
                let mut bytes = vec![0u8; rows.div_ceil(8)];
                for (i, byte) in bytes.iter_mut().enumerate() {
                    for bit in 0..8 {
                        let row = i * 8 + bit;
                        if row < rows && m.is_null(row) {
                            *byte |= 1 << bit;
                        }
                    }
                }
                self.buf.extend_from_slice(&bytes);
            }
        }
    }
}

/// Bounds-checked byte decoder: every read that would run past the end
/// returns a corruption [`Error`] instead of panicking.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'a str,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8], what: &'a str) -> Dec<'a> {
        Dec { buf, pos: 0, what }
    }

    fn fail(&self, msg: &str) -> Error {
        Error::Invalid(format!("corrupt {}: {msg} at byte {}", self.what, self.pos))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(self.fail("unexpected end of data"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// A length to allocate for: sanity-capped by the bytes actually
    /// remaining, so a corrupt length cannot trigger a huge allocation.
    fn len(&mut self, per_item: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(per_item.max(1)) > self.buf.len() - self.pos {
            return Err(self.fail("length prefix exceeds remaining data"));
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String> {
        let n = self.len(1)?;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| self.fail("invalid UTF-8"))
    }
    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(false),
            2 => Value::Bool(true),
            3 => Value::Int(self.i64()?),
            4 => Value::Str(intern(&self.str()?)),
            t => return Err(self.fail(&format!("unknown value tag {t}"))),
        })
    }
    fn words(&mut self) -> Result<Arc<[u64]>> {
        let n = self.len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out.into())
    }
    fn nulls(&mut self, rows: usize) -> Result<Option<NullMask>> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let bytes = self.take(rows.div_ceil(8))?;
                let mut mask = NullMask::new(rows);
                for (i, byte) in bytes.iter().enumerate() {
                    for bit in 0..8 {
                        let row = i * 8 + bit;
                        if row < rows && byte & (1 << bit) != 0 {
                            mask.set_null(row);
                        }
                    }
                }
                Ok(Some(mask))
            }
            t => Err(self.fail(&format!("unknown null-mask flag {t}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Block codec: one (column, segment) encoded payload.
// ---------------------------------------------------------------------------

const BLOCK_FOR_INT: u8 = 1;
const BLOCK_DICT_STR: u8 = 2;
const BLOCK_PLAIN: u8 = 3;

/// Serialize one encoded segment into block bytes (no zone map — that
/// lives in the manifest directory next to the block reference).
fn encode_block(seg: &ColumnSegment) -> Vec<u8> {
    let mut e = Enc::default();
    let rows = seg.rows();
    match seg.encoding() {
        SegEncoding::ForInt {
            base,
            width,
            packed,
            nulls,
        } => {
            e.u8(BLOCK_FOR_INT);
            e.u32(rows as u32);
            e.i64(*base);
            e.u8(*width);
            e.nulls(rows, nulls);
            e.words(packed);
        }
        SegEncoding::DictStr {
            dict,
            width,
            packed,
            nulls,
        } => {
            e.u8(BLOCK_DICT_STR);
            e.u32(rows as u32);
            e.u32(dict.len() as u32);
            for s in dict.iter() {
                e.str(s);
            }
            e.u8(*width);
            e.nulls(rows, nulls);
            e.words(packed);
        }
        SegEncoding::Plain(col) => {
            e.u8(BLOCK_PLAIN);
            e.u32(rows as u32);
            for i in 0..rows {
                e.value(&col.get(i));
            }
        }
    }
    e.buf
}

/// Parse block bytes back into an encoded segment. `rows` and `zone`
/// come from the manifest directory; the block's own row count must
/// agree (a stale manifest over a rewritten page file fails here even
/// if both checksums individually hold).
fn decode_block(bytes: &[u8], rows: usize, zone: &ZoneMap, what: &str) -> Result<ColumnSegment> {
    let mut d = Dec::new(bytes, what);
    let tag = d.u8()?;
    let block_rows = d.u32()? as usize;
    if block_rows != rows {
        return Err(d.fail(&format!(
            "block holds {block_rows} rows, manifest expects {rows}"
        )));
    }
    let enc = match tag {
        BLOCK_FOR_INT => {
            let base = d.i64()?;
            let width = d.u8()?;
            if width > 64 {
                return Err(d.fail(&format!("bit width {width} out of range")));
            }
            let nulls = d.nulls(rows)?;
            let packed = d.words()?;
            if packed.len() < (rows * width as usize).div_ceil(64) {
                return Err(d.fail("packed payload shorter than rows × width"));
            }
            SegEncoding::ForInt {
                base,
                width,
                packed,
                nulls,
            }
        }
        BLOCK_DICT_STR => {
            let n = d.len(5)?;
            let mut dict = Vec::with_capacity(n);
            for _ in 0..n {
                dict.push(intern(&d.str()?));
            }
            let width = d.u8()?;
            if width > 64 {
                return Err(d.fail(&format!("bit width {width} out of range")));
            }
            let nulls = d.nulls(rows)?;
            let packed = d.words()?;
            if packed.len() < (rows * width as usize).div_ceil(64) {
                return Err(d.fail("packed payload shorter than rows × width"));
            }
            // Every code must land inside the dictionary, or decode
            // would panic on index-out-of-bounds later.
            let dict: Arc<[Arc<str>]> = dict.into();
            if rows > 0 && dict.is_empty() {
                return Err(d.fail("empty dictionary over a non-empty segment"));
            }
            for i in 0..rows {
                if unpack_check(&packed, width, i) as usize >= dict.len() {
                    return Err(d.fail("dictionary code out of range"));
                }
            }
            SegEncoding::DictStr {
                dict,
                width,
                packed,
                nulls,
            }
        }
        BLOCK_PLAIN => {
            let mut vals = Vec::with_capacity(rows);
            for _ in 0..rows {
                vals.push(d.value()?);
            }
            SegEncoding::Plain(Arc::new(Column::from_values(vals)))
        }
        t => return Err(d.fail(&format!("unknown block tag {t}"))),
    };
    if d.pos != bytes.len() {
        return Err(d.fail("trailing garbage after block payload"));
    }
    Ok(ColumnSegment::from_parts(rows, zone.clone(), enc))
}

/// Read the `idx`-th `width`-bit value out of a packed buffer (bounds
/// pre-checked by the caller; mirrors the private unpacker in
/// `segment.rs` for the dictionary-code validation above).
fn unpack_check(packed: &[u64], width: u8, idx: usize) -> u64 {
    if width == 0 {
        return 0;
    }
    let w = width as usize;
    let bit = idx * w;
    let (word, off) = (bit / 64, bit % 64);
    let mut v = packed[word] >> off;
    if off + w > 64 {
        v |= packed[word + 1] << (64 - off);
    }
    if w < 64 {
        v &= (1u64 << w) - 1;
    }
    v
}

fn encode_zone(e: &mut Enc, z: &ZoneMap) {
    e.value(&z.min);
    e.value(&z.max);
    e.u64(z.null_count as u64);
    e.u64(z.ndv as u64);
}

fn decode_zone(d: &mut Dec<'_>) -> Result<ZoneMap> {
    Ok(ZoneMap {
        min: d.value()?,
        max: d.value()?,
        null_count: d.u64()? as usize,
        ndv: d.u64()? as usize,
    })
}

fn encode_stats(e: &mut Enc, st: &TableStats) {
    e.u64(st.rows as u64);
    e.u64(st.bytes as u64);
    e.u32(st.ndv.len() as u32);
    for &n in &st.ndv {
        e.u64(n as u64);
    }
    e.u32(st.pair_ndv.len() as u32);
    for &n in &st.pair_ndv {
        e.u64(n as u64);
    }
    e.u32(st.minmax.len() as u32);
    for mm in &st.minmax {
        match mm {
            None => e.u8(0),
            Some((lo, hi)) => {
                e.u8(1);
                e.value(lo);
                e.value(hi);
            }
        }
    }
}

fn decode_stats(d: &mut Dec<'_>) -> Result<TableStats> {
    let rows = d.u64()? as usize;
    let bytes = d.u64()? as usize;
    let n = d.len(8)?;
    let ndv = (0..n)
        .map(|_| Ok(d.u64()? as usize))
        .collect::<Result<_>>()?;
    let n = d.len(8)?;
    let pair_ndv = (0..n)
        .map(|_| Ok(d.u64()? as usize))
        .collect::<Result<_>>()?;
    let n = d.len(1)?;
    let minmax = (0..n)
        .map(|_| {
            Ok(match d.u8()? {
                0 => None,
                1 => Some((d.value()?, d.value()?)),
                t => return Err(d.fail(&format!("unknown minmax flag {t}"))),
            })
        })
        .collect::<Result<_>>()?;
    Ok(TableStats {
        rows,
        ndv,
        pair_ndv,
        bytes,
        minmax,
    })
}

// ---------------------------------------------------------------------------
// DiskImage: an opened, validated segment file pair.
// ---------------------------------------------------------------------------

/// One block's location in the page file plus its checksum.
#[derive(Clone, Copy, Debug)]
struct BlockRef {
    offset: u64,
    len: u64,
    crc: u32,
}

static NEXT_IMAGE_ID: AtomicU64 = AtomicU64::new(1);

/// An opened on-disk relation image: the page-file handle, the parsed
/// manifest (geometry, names, statistics, zone maps, block directory),
/// and a process-unique id that keys this image's segments in the
/// shared [`BufferPool`].
///
/// Opening validates the *entire* store eagerly (manifest magic,
/// version and checksum; directory bounds against the page file's real
/// length; every block's checksum and parseability), so every
/// corruption mode is an [`Error`] here. A fetch-time failure after
/// open — the file modified underneath a running process, or an
/// injected fault — surfaces as a clean [`Error::Io`] (after bounded
/// transient retries), never as a panic or a wrong answer.
pub struct DiskImage {
    id: u64,
    seg_path: PathBuf,
    file: File,
    seg_rows: usize,
    len: usize,
    names: Vec<String>,
    stats: TableStats,
    /// `dir[col * seg_count + seg]`, same indexing for `zones`.
    dir: Vec<BlockRef>,
    zones: Vec<ZoneMap>,
    /// When set, dropping the image deletes this whole directory (the
    /// scratch spill of an in-memory relation).
    scratch_dir: Option<PathBuf>,
}

impl Debug for DiskImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskImage")
            .field("path", &self.seg_path)
            .field("rows", &self.len)
            .field("segments", &self.seg_count())
            .finish()
    }
}

impl Drop for DiskImage {
    fn drop(&mut self) {
        if let Some(dir) = &self.scratch_dir {
            let _ = fs::remove_dir_all(dir);
        }
    }
}

fn manifest_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.manifest"))
}

fn seg_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.seg"))
}

fn io_fail(what: &str, path: &Path, e: io::Error) -> Error {
    Error::Invalid(format!("{what} `{}`: {e}", path.display()))
}

impl DiskImage {
    /// Open and fully validate `<dir>/<name>.{manifest,seg}`.
    pub fn open(dir: &Path, name: &str) -> Result<Arc<DiskImage>> {
        DiskImage::open_with(dir, name, None)
    }

    /// [`DiskImage::open`] with an [`Open`](FaultKind::Open) fault edge
    /// drawn (and transient failures retried) before the real open —
    /// the injectable variant of the manifest-open path.
    pub fn open_injected(
        dir: &Path,
        name: &str,
        faults: Option<&FaultInjector>,
    ) -> Result<Arc<DiskImage>> {
        fault::retry_io(faults, || {
            fault::inject(faults, FaultKind::Open, "open segment manifest")
        })
        .map_err(|e| fault::io_error("open segment manifest", &e))?;
        DiskImage::open_with(dir, name, None)
    }

    fn open_with(dir: &Path, name: &str, scratch_dir: Option<PathBuf>) -> Result<Arc<DiskImage>> {
        let mpath = manifest_path(dir, name);
        let bytes =
            fs::read(&mpath).map_err(|e| io_fail("cannot read segment manifest", &mpath, e))?;
        let what = format!("segment manifest `{}`", mpath.display());
        let corrupt = |msg: &str| Error::Invalid(format!("corrupt {what}: {msg}"));
        if bytes.len() < MAGIC.len() + 8 {
            return Err(corrupt("file too short for header and checksum"));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad magic (not a segment manifest?)"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored_crc = u32::from_le_bytes(tail.try_into().unwrap());
        if crc32(body) != stored_crc {
            return Err(corrupt("manifest checksum mismatch"));
        }
        let mut d = Dec::new(&body[MAGIC.len()..], &what);
        let version = d.u32()?;
        if version != VERSION {
            return Err(corrupt(&format!(
                "unsupported format version {version} (this build reads {VERSION})"
            )));
        }
        let seg_rows = d.u64()? as usize;
        let len = d.u64()? as usize;
        let arity = d.u32()? as usize;
        let seg_count = d.u32()? as usize;
        let page_len = d.u64()?;
        if seg_rows == 0 {
            return Err(corrupt("zero rows per segment"));
        }
        if seg_count != len.div_ceil(seg_rows) {
            return Err(corrupt("segment count inconsistent with row count"));
        }
        let n = d.len(4)?;
        if n != arity {
            return Err(corrupt("column-name count does not match arity"));
        }
        let names = (0..arity).map(|_| d.str()).collect::<Result<Vec<_>>>()?;
        let stats = decode_stats(&mut d)?;
        if stats.rows != len || stats.ndv.len() != arity || stats.minmax.len() != arity {
            return Err(corrupt("statistics inconsistent with geometry"));
        }
        let blocks = arity
            .checked_mul(seg_count)
            .ok_or_else(|| corrupt("directory size overflows"))?;
        let mut dir_entries = Vec::with_capacity(blocks);
        let mut zones = Vec::with_capacity(blocks);
        for _ in 0..blocks {
            dir_entries.push(BlockRef {
                offset: d.u64()?,
                len: d.u64()?,
                crc: d.u32()?,
            });
            zones.push(decode_zone(&mut d)?);
        }
        if d.pos != body.len() - MAGIC.len() {
            return Err(corrupt("trailing garbage after directory"));
        }

        let spath = seg_path(dir, name);
        let file = File::open(&spath).map_err(|e| io_fail("cannot open page file", &spath, e))?;
        let file_len = file
            .metadata()
            .map_err(|e| io_fail("cannot stat page file", &spath, e))?
            .len();
        if file_len != page_len {
            return Err(Error::Invalid(format!(
                "corrupt segment store `{}`: page file is {file_len} bytes but the manifest \
                 recorded {page_len} (truncated or torn write?)",
                spath.display()
            )));
        }
        let img = DiskImage {
            id: NEXT_IMAGE_ID.fetch_add(1, Ordering::Relaxed),
            seg_path: spath,
            file,
            seg_rows,
            len,
            names,
            stats,
            dir: dir_entries,
            zones,
            scratch_dir,
        };
        // Validate every block now: bounds against the real file length,
        // checksum, and a full parse. One streaming pass over the page
        // file at open buys infallible fetches for the process lifetime
        // (and catches torn/truncated/stale files where the damage sits
        // in a block the first query would otherwise trip over mid-scan).
        for col in 0..img.arity() {
            for seg in 0..img.seg_count() {
                let r = img.dir[col * img.seg_count() + seg];
                if r.offset.checked_add(r.len).is_none_or(|end| end > file_len) {
                    return Err(Error::Invalid(format!(
                        "corrupt segment store `{}`: block (col {col}, seg {seg}) \
                         runs past the end of the page file (truncated or torn write?)",
                        img.seg_path.display()
                    )));
                }
                img.read_block(col, seg, |msg| Error::Invalid(msg.to_string()))
                    .map(drop)?;
            }
        }
        Ok(Arc::new(img))
    }

    /// Read, checksum-verify and parse one block. `fail` turns a
    /// corruption message into the caller's failure mode (an `Error`
    /// during open-time validation; a panic after).
    fn read_block(
        &self,
        col: usize,
        seg: usize,
        fail: impl Fn(&str) -> Error,
    ) -> Result<ColumnSegment> {
        let idx = col * self.seg_count() + seg;
        let r = self.dir[idx];
        let mut buf = vec![0u8; r.len as usize];
        self.file.read_exact_at(&mut buf, r.offset).map_err(|e| {
            fail(&format!(
                "corrupt segment store `{}`: cannot read block (col {col}, seg {seg}): {e}",
                self.seg_path.display()
            ))
        })?;
        if crc32(&buf) != r.crc {
            return Err(fail(&format!(
                "corrupt segment store `{}`: checksum mismatch in block (col {col}, seg {seg})",
                self.seg_path.display()
            )));
        }
        let what = format!(
            "segment block (col {col}, seg {seg}) of `{}`",
            self.seg_path.display()
        );
        decode_block(&buf, self.seg_bounds(seg).len(), &self.zones[idx], &what)
            .map_err(|e| fail(&e.to_string()))
    }

    /// Rows per segment.
    pub fn seg_rows(&self) -> usize {
        self.seg_rows
    }

    /// Total rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.names.len()
    }

    /// Number of segments.
    pub fn seg_count(&self) -> usize {
        self.len.div_ceil(self.seg_rows)
    }

    /// The row range `[start, end)` of segment `seg`.
    pub fn seg_bounds(&self, seg: usize) -> std::ops::Range<usize> {
        let start = (seg * self.seg_rows).min(self.len);
        start..(start + self.seg_rows).min(self.len)
    }

    /// Column names as written by the relation's writer.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The zone map of (column `col`, segment `seg`) — served from the
    /// manifest, no page-file access.
    pub fn zone(&self, col: usize, seg: usize) -> &ZoneMap {
        &self.zones[col * self.seg_count() + seg]
    }

    /// The statistics the writer accumulated while streaming.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Read and decode segment `seg` across all columns, accounting the
    /// pages read and bytes materialized into `io`. Open-time validation
    /// caught every static corruption mode; a failure *now* — the file
    /// changed underneath a running process, or a fault injected on the
    /// [`Read`](FaultKind::Read) edge — surfaces as [`Error::Io`] after
    /// bounded transient retries, never as a panic or a wrong answer.
    pub fn read_segment(&self, seg: usize, io: &IoCounters) -> Result<DecodedSegment> {
        let bounds = self.seg_bounds(seg);
        let mut pages = 0usize;
        let mut bytes = 0usize;
        let mut cols: Vec<Arc<Column>> = Vec::with_capacity(self.arity());
        for col in 0..self.arity() {
            pages += (self.dir[col * self.seg_count() + seg].len as usize).div_ceil(PAGE);
            // Inject before the real read: a transient fault retried here
            // re-reads from unchanged state, so the decoded bytes are
            // identical to a fault-free run.
            fault::retry_io(io.faults(), || {
                fault::inject(io.faults(), FaultKind::Read, "read segment block")
            })
            .map_err(|e| fault::io_error("read segment block", &e))?;
            let block = self.read_block(col, seg, |msg| {
                Error::Io(format!("segment file changed after open: {msg}"))
            })?;
            bytes += block.decoded_bytes();
            cols.push(block.decode());
        }
        io.pages_read.fetch_add(pages, Ordering::Relaxed);
        io.decoded(bytes);
        Ok(DecodedSegment {
            start: bounds.start,
            len: bounds.len(),
            cols,
            bytes,
        })
    }

    /// Materialize the full row store (the fallback for operators that
    /// need rows — breakers, spill paths, row cursors). Streams one
    /// segment at a time; the decoded segments are transient.
    pub fn decode_rows(&self) -> Result<Vec<Row>> {
        let io = IoCounters::default();
        let mut rows: Vec<Row> = Vec::with_capacity(self.len);
        for seg in 0..self.seg_count() {
            let d = self.read_segment(seg, &io)?;
            for pos in 0..d.len {
                rows.push(d.cols.iter().map(|c| c.get(pos)).collect());
            }
        }
        Ok(rows)
    }
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

/// Scratch-directory sequence (mirrors the spill module's convention).
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh process-unique scratch directory for transparent disk spills.
fn new_scratch_dir() -> Result<PathBuf> {
    let dir = std::env::temp_dir().join(format!(
        "urel-disk-{}-{}",
        std::process::id(),
        SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).map_err(|e| io_fail("cannot create scratch dir", &dir, e))?;
    Ok(dir)
}

/// Shared page-file writer state: sequential blocks, page-aligned.
struct PageWriter {
    file: File,
    path: PathBuf,
    offset: u64,
    /// Injects [`FaultKind::Write`] before each block (tests/suite).
    faults: Option<Arc<FaultInjector>>,
}

impl PageWriter {
    fn create(path: PathBuf) -> Result<PageWriter> {
        let file = File::create(&path).map_err(|e| io_fail("cannot create page file", &path, e))?;
        Ok(PageWriter {
            file,
            path,
            offset: 0,
            faults: None,
        })
    }

    /// Append one block at the next page boundary; returns its reference.
    /// Write faults — injected or real — are never retried (the file
    /// position is not restartable); they propagate as [`Error::Io`].
    fn block(&mut self, seg: &ColumnSegment) -> Result<BlockRef> {
        fault::inject(self.faults.as_deref(), FaultKind::Write, "write page block")
            .map_err(|e| fault::io_error("write page block", &e))?;
        let bytes = encode_block(seg);
        let r = BlockRef {
            offset: self.offset,
            len: bytes.len() as u64,
            crc: crc32(&bytes),
        };
        self.file
            .write_all(&bytes)
            .map_err(|e| io_fail("cannot write page file", &self.path, e))?;
        let pad = bytes.len().div_ceil(PAGE) * PAGE - bytes.len();
        if pad > 0 {
            self.file
                .write_all(&vec![0u8; pad])
                .map_err(|e| io_fail("cannot write page file", &self.path, e))?;
        }
        self.offset += (bytes.len() + pad) as u64;
        Ok(r)
    }
}

/// Assemble and write the manifest, then reopen through the validating
/// reader — every writer exit runs the full read path once, so a broken
/// writer can never silently produce an unreadable store.
#[allow(clippy::too_many_arguments)]
fn write_manifest(
    dir: &Path,
    name: &str,
    seg_rows: usize,
    len: usize,
    names: &[String],
    stats: &TableStats,
    blocks: &[(BlockRef, ZoneMap)], // col-major: [col * seg_count + seg]
    scratch_dir: Option<PathBuf>,
) -> Result<Arc<DiskImage>> {
    let mut e = Enc::default();
    e.buf.extend_from_slice(MAGIC);
    e.u32(VERSION);
    e.u64(seg_rows as u64);
    e.u64(len as u64);
    e.u32(names.len() as u32);
    e.u32(len.div_ceil(seg_rows) as u32);
    // The exact page-file length: lets the reader reject a torn final
    // page even when only zero padding went missing.
    let spath = seg_path(dir, name);
    let page_len = fs::metadata(&spath)
        .map_err(|e| io_fail("cannot stat page file", &spath, e))?
        .len();
    e.u64(page_len);
    e.u32(names.len() as u32);
    for n in names {
        e.str(n);
    }
    encode_stats(&mut e, stats);
    for (r, zone) in blocks {
        e.u64(r.offset);
        e.u64(r.len);
        e.u32(r.crc);
        encode_zone(&mut e, zone);
    }
    let crc = crc32(&e.buf);
    e.u32(crc);
    let mpath = manifest_path(dir, name);
    fs::write(&mpath, &e.buf).map_err(|e| io_fail("cannot write manifest", &mpath, e))?;
    DiskImage::open_with(dir, name, scratch_dir)
}

/// Serialize an already-encoded in-memory [`SegmentedImage`] into a
/// segment store — the transparent-spill path for relations that were
/// built in memory but scanned under [`crate::catalog::StorageMode::Disk`].
pub fn write_image(
    image: &SegmentedImage,
    names: &[String],
    dir: &Path,
    name: &str,
) -> Result<Arc<DiskImage>> {
    write_image_with(image, names, dir, name, None)
}

/// [`write_image`] into a fresh scratch directory removed when the
/// returned image drops.
pub fn write_image_scratch(image: &SegmentedImage, names: &[String]) -> Result<Arc<DiskImage>> {
    let dir = new_scratch_dir()?;
    write_image_with(image, names, &dir, "rel", Some(dir.clone()))
}

fn write_image_with(
    image: &SegmentedImage,
    names: &[String],
    dir: &Path,
    name: &str,
    scratch_dir: Option<PathBuf>,
) -> Result<Arc<DiskImage>> {
    debug_assert_eq!(names.len(), image.arity());
    let mut pw = PageWriter::create(seg_path(dir, name))?;
    let seg_count = image.seg_count();
    let mut blocks: Vec<Option<(BlockRef, ZoneMap)>> = vec![None; names.len() * seg_count];
    // Segment-major on disk (one segment's columns are contiguous),
    // column-major in the directory (matching the manifest layout).
    for seg in 0..seg_count {
        for col in 0..image.arity() {
            let s = &image.col_segments(col)[seg];
            blocks[col * seg_count + seg] = Some((pw.block(s)?, s.zone().clone()));
        }
    }
    let blocks: Vec<(BlockRef, ZoneMap)> = blocks.into_iter().map(|b| b.unwrap()).collect();
    write_manifest(
        dir,
        name,
        image.seg_rows(),
        image.len(),
        names,
        image.stats(),
        &blocks,
        scratch_dir,
    )
}

/// Streaming disk-table writer: rows go straight into encoded segment
/// blocks on disk — neither the row store nor the full encoded image is
/// ever materialized in memory. Only the current partial segment (at
/// most `seg_rows` rows per column), the accumulated NDV digest sets
/// and the block directory are resident. `finish` writes the manifest
/// and reopens through the validating reader.
pub struct DiskTableWriter {
    dir: PathBuf,
    name: String,
    scratch_dir: Option<PathBuf>,
    seg_rows: usize,
    names: Vec<String>,
    pw: PageWriter,
    cur: Vec<Vec<Value>>,
    in_cur: usize,
    len: usize,
    /// Per column, in segment order (transposed to col-major at finish).
    blocks: Vec<Vec<(BlockRef, ZoneMap)>>,
    bytes: usize,
    col_digests: Vec<crate::fxhash::FxHashSet<u64>>,
    pair_digests: Vec<crate::fxhash::FxHashSet<u64>>,
}

impl DiskTableWriter {
    /// Create `<dir>/<name>.{seg,manifest}` for a table with the given
    /// column names, at `seg_rows` rows per segment (floored at 1).
    pub fn create(
        dir: &Path,
        name: &str,
        names: Vec<String>,
        seg_rows: usize,
    ) -> Result<DiskTableWriter> {
        Self::create_with(dir.to_path_buf(), name, names, seg_rows, None)
    }

    /// Create in a fresh scratch directory that is deleted when the
    /// finished image drops — the loaders' path under transparent
    /// [`crate::catalog::StorageMode::Disk`] defaults.
    pub fn create_scratch(
        name: &str,
        names: Vec<String>,
        seg_rows: usize,
    ) -> Result<DiskTableWriter> {
        let dir = new_scratch_dir()?;
        Self::create_with(dir.clone(), name, names, seg_rows, Some(dir))
    }

    fn create_with(
        dir: PathBuf,
        name: &str,
        names: Vec<String>,
        seg_rows: usize,
        scratch_dir: Option<PathBuf>,
    ) -> Result<DiskTableWriter> {
        let arity = names.len();
        let pw = PageWriter::create(seg_path(&dir, name))?;
        Ok(DiskTableWriter {
            dir,
            name: name.to_string(),
            scratch_dir,
            seg_rows: seg_rows.max(1),
            names,
            pw,
            cur: vec![Vec::new(); arity],
            in_cur: 0,
            len: 0,
            blocks: vec![Vec::new(); arity],
            bytes: 0,
            col_digests: vec![crate::fxhash::FxHashSet::default(); arity],
            pair_digests: vec![crate::fxhash::FxHashSet::default(); arity.saturating_sub(1)],
        })
    }

    /// Inject write faults into this writer's page and manifest writes
    /// (the explicit-injector variant the fault suite drives).
    pub fn with_faults(mut self, faults: Option<Arc<FaultInjector>>) -> DiskTableWriter {
        self.pw.faults = faults;
        self
    }

    /// Append one row (must match the writer's arity).
    pub fn push(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.cur.len() {
            return Err(Error::ArityMismatch {
                expected: self.cur.len(),
                got: row.len(),
            });
        }
        for (c, v) in row.iter().enumerate() {
            self.bytes += v.size_bytes();
            self.col_digests[c].insert(value_digest(v));
            self.cur[c].push(v.clone());
        }
        for c in 0..row.len().saturating_sub(1) {
            let mut h = crate::fxhash::FxHasher::default();
            row[c].hash(&mut h);
            row[c + 1].hash(&mut h);
            self.pair_digests[c].insert(h.finish());
        }
        self.in_cur += 1;
        self.len += 1;
        if self.in_cur == self.seg_rows {
            self.flush()?;
        }
        Ok(())
    }

    /// Encode and write the current partial segment (segment-major: all
    /// columns of this segment are contiguous in the page file).
    fn flush(&mut self) -> Result<()> {
        for (col, vals) in self.cur.iter_mut().enumerate() {
            let seg = ColumnSegment::encode(std::mem::take(vals));
            let zone = seg.zone().clone();
            self.blocks[col].push((self.pw.block(&seg)?, zone));
        }
        self.in_cur = 0;
        Ok(())
    }

    /// Flush the trailing partial segment, write the manifest and
    /// reopen the finished store through the validating reader.
    pub fn finish(mut self) -> Result<Arc<DiskImage>> {
        if self.in_cur > 0 {
            self.flush()?;
        }
        let minmax = self
            .blocks
            .iter()
            .map(|segs| {
                segs.iter().map(|(_, z)| z).fold(None, |acc, z| {
                    Some(match acc {
                        None => (z.min.clone(), z.max.clone()),
                        Some((lo, hi)) => (
                            if z.min < lo { z.min.clone() } else { lo },
                            if z.max > hi { z.max.clone() } else { hi },
                        ),
                    })
                })
            })
            .collect();
        let stats = TableStats {
            rows: self.len,
            ndv: self.col_digests.iter().map(|s| s.len().max(1)).collect(),
            pair_ndv: self.pair_digests.iter().map(|s| s.len().max(1)).collect(),
            bytes: self.bytes,
            minmax,
        };
        let seg_count = self.len.div_ceil(self.seg_rows);
        let mut blocks: Vec<Option<(BlockRef, ZoneMap)>> = vec![None; self.names.len() * seg_count];
        for (col, segs) in self.blocks.iter().enumerate() {
            debug_assert_eq!(segs.len(), seg_count);
            for (seg, entry) in segs.iter().enumerate() {
                blocks[col * seg_count + seg] = Some(entry.clone());
            }
        }
        let blocks: Vec<(BlockRef, ZoneMap)> = blocks.into_iter().map(|b| b.unwrap()).collect();
        fault::inject(
            self.pw.faults.as_deref(),
            FaultKind::Write,
            "write manifest",
        )
        .map_err(|e| fault::io_error("write manifest", &e))?;
        write_manifest(
            &self.dir,
            &self.name,
            self.seg_rows,
            self.len,
            &self.names,
            &stats,
            &blocks,
            self.scratch_dir.clone(),
        )
    }
}

// ---------------------------------------------------------------------------
// BufferPool: decoded segments shared across relations.
// ---------------------------------------------------------------------------

/// One resident decoded segment, keyed by (image id, segment index).
struct PoolSlot {
    key: (u64, usize),
    dec: Arc<DecodedSegment>,
    referenced: bool,
}

struct PoolState {
    slots: Vec<PoolSlot>,
    hand: usize,
    /// Keys some worker is loading right now (pool lock released).
    in_flight: Vec<(u64, usize)>,
}

/// A clock-eviction cache of decoded segments shared across *all*
/// relations scanned under disk storage: per-scan providers lease slots
/// from it, so concurrent queries over different tables compete for the
/// same bounded memory — the paper's "conventional DBMS" discipline.
///
/// Disk reads and decodes happen outside the pool lock behind a
/// per-key in-flight latch (exactly one loader per segment; peers wait
/// on the condvar; unrelated fetches proceed concurrently), which is
/// the same locking discipline as
/// [`crate::provider::PagedImageProvider`] — mandatory here, where a
/// blocking `read_at` under a global mutex would serialize every morsel
/// worker on cold pages.
pub struct BufferPool {
    cap: usize,
    state: Mutex<PoolState>,
    cv: Condvar,
}

impl Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("cap", &self.cap)
            .finish()
    }
}

impl BufferPool {
    /// Pool holding at most `cap` decoded segments (floored at 1).
    pub fn new(cap: usize) -> BufferPool {
        BufferPool {
            cap: cap.max(1),
            state: Mutex::new(PoolState {
                slots: Vec::new(),
                hand: 0,
                in_flight: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Capacity in decoded segments.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Fetch the segment under `key`, running `load` (outside the pool
    /// lock) on a miss. Hits bump `io.pool_hits`; misses bump
    /// `io.pool_misses` and install the loaded segment under clock
    /// eviction. Concurrent callers of the same key share one load.
    ///
    /// The in-flight latch is guarded: if `load` fails *or unwinds*,
    /// the latch entry is removed and waiting peers are woken (the next
    /// one retries the load itself) — no error path can leave a stale
    /// lease that deadlocks later fetches of the same key.
    pub fn get(
        &self,
        key: (u64, usize),
        io: &IoCounters,
        load: impl FnOnce() -> Result<Arc<DecodedSegment>>,
    ) -> Result<Arc<DecodedSegment>> {
        fault::retry_io(io.faults(), || {
            fault::inject(io.faults(), FaultKind::Lease, "lease buffer-pool slot")
        })
        .map_err(|e| fault::io_error("lease buffer-pool slot", &e))?;
        let mut state = fault::lock_recover(&self.state);
        loop {
            if let Some(slot) = state.slots.iter_mut().find(|s| s.key == key) {
                slot.referenced = true;
                io.pool_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&slot.dec));
            }
            if state.in_flight.contains(&key) {
                state = self
                    .cv
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            } else {
                break;
            }
        }
        state.in_flight.push(key);
        drop(state);
        // Remove the latch and wake peers on *every* exit — return,
        // error, or unwind — so a failed load never wedges the key.
        struct Latch<'a> {
            pool: &'a BufferPool,
            key: (u64, usize),
        }
        impl Drop for Latch<'_> {
            fn drop(&mut self) {
                let mut state = fault::lock_recover(&self.pool.state);
                state.in_flight.retain(|&k| k != self.key);
                drop(state);
                self.pool.cv.notify_all();
            }
        }
        let _latch = Latch { pool: self, key };
        let dec = load()?;
        let mut state = fault::lock_recover(&self.state);
        io.pool_misses.fetch_add(1, Ordering::Relaxed);
        if state.slots.len() < self.cap {
            state.slots.push(PoolSlot {
                key,
                dec: Arc::clone(&dec),
                referenced: true,
            });
        } else {
            loop {
                let hand = state.hand;
                state.hand = (hand + 1) % self.cap;
                let slot = &mut state.slots[hand];
                if slot.referenced {
                    slot.referenced = false;
                } else {
                    *slot = PoolSlot {
                        key,
                        dec: Arc::clone(&dec),
                        referenced: true,
                    };
                    break;
                }
            }
        }
        drop(state);
        Ok(dec)
    }

    /// Number of currently resident segments (test hook).
    pub fn resident(&self) -> usize {
        fault::lock_recover(&self.state).slots.len()
    }

    /// Number of in-flight load latches (leak-check hook: zero once no
    /// fetch is executing, whatever path the last fetch exited by).
    pub fn in_flight_len(&self) -> usize {
        fault::lock_recover(&self.state).in_flight.len()
    }
}

/// The process-wide pool registry, keyed by capacity: every scan
/// configured with the same `buffer_pool` capacity shares one pool (the
/// "shared across relations" contract), while distinct capacities get
/// distinct pools so differently-configured catalogs — and tests — stay
/// isolated from each other.
pub fn pool_for(cap: usize) -> Arc<BufferPool> {
    type PoolRegistry = Vec<(usize, Arc<BufferPool>)>;
    static POOLS: OnceLock<Mutex<PoolRegistry>> = OnceLock::new();
    let cap = cap.max(1);
    let mut pools = fault::lock_recover(POOLS.get_or_init(|| Mutex::new(Vec::new())));
    if let Some((_, p)) = pools.iter().find(|(c, _)| *c == cap) {
        return Arc::clone(p);
    }
    let p = Arc::new(BufferPool::new(cap));
    pools.push((cap, Arc::clone(&p)));
    p
}

// ---------------------------------------------------------------------------
// DiskImageProvider
// ---------------------------------------------------------------------------

/// [`ImageProvider`] over an opened [`DiskImage`]: layout and zone maps
/// come from the manifest; segment fetches lease slots from the shared
/// [`BufferPool`].
pub struct DiskImageProvider {
    image: Arc<DiskImage>,
    pool: Arc<BufferPool>,
}

impl DiskImageProvider {
    /// Provider over `image`, fetching through `pool`.
    pub fn new(image: Arc<DiskImage>, pool: Arc<BufferPool>) -> DiskImageProvider {
        DiskImageProvider { image, pool }
    }
}

impl Debug for DiskImageProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskImageProvider")
            .field("image", &self.image)
            .field("pool_cap", &self.pool.cap())
            .finish()
    }
}

impl ImageProvider for DiskImageProvider {
    fn seg_rows(&self) -> usize {
        self.image.seg_rows()
    }

    fn seg_count(&self) -> usize {
        self.image.seg_count()
    }

    fn zone(&self, col: usize, seg: usize) -> &ZoneMap {
        self.image.zone(col, seg)
    }

    fn segment(&self, seg: usize, io: &IoCounters) -> Result<Arc<DecodedSegment>> {
        self.pool.get((self.image.id, seg), io, || {
            Ok(Arc::new(self.image.read_segment(seg, io)?))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::value::intern;

    fn rel(n: usize) -> Relation {
        Relation::from_rows(
            ["k", "w", "v"],
            (0..n as i64).map(|i| {
                vec![
                    Value::Int(i),
                    Value::Str(intern(["AIR", "RAIL", "SHIP", "TRUCK"][i as usize % 4])),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Int(1000 - i)
                    },
                ]
            }),
        )
        .unwrap()
    }

    fn names(r: &Relation) -> Vec<String> {
        r.schema().columns().iter().map(|c| c.to_string()).collect()
    }

    #[test]
    fn write_image_roundtrips_byte_identically() {
        let r = rel(100);
        let dir = tempdir();
        let img = write_image(&r.segments(16), &names(&r), &dir, "t").unwrap();
        assert_eq!(img.len(), 100);
        assert_eq!(img.seg_rows(), 16);
        assert_eq!(img.seg_count(), 7);
        assert_eq!(img.arity(), 3);
        assert_eq!(img.names(), &["k", "w", "v"]);
        let io = IoCounters::default();
        for seg in 0..img.seg_count() {
            let d = img.read_segment(seg, &io).unwrap();
            assert_eq!(d.start, seg * 16);
            for pos in 0..d.len {
                for (c, col) in d.cols.iter().enumerate() {
                    assert_eq!(
                        col.get(pos),
                        r.rows()[d.start + pos][c],
                        "({seg},{pos},{c})"
                    );
                }
            }
        }
        assert!(io.pages_read.load(Ordering::Relaxed) >= img.seg_count() * img.arity());
        // Zone maps and stats survived the manifest roundtrip.
        let mem = r.segments(16);
        for col in 0..3 {
            for seg in 0..img.seg_count() {
                assert_eq!(img.zone(col, seg).min, mem.zone(col, seg).min);
                assert_eq!(img.zone(col, seg).max, mem.zone(col, seg).max);
                assert_eq!(img.zone(col, seg).null_count, mem.zone(col, seg).null_count);
                assert_eq!(img.zone(col, seg).ndv, mem.zone(col, seg).ndv);
            }
        }
        assert_eq!(img.stats().rows, mem.stats().rows);
        assert_eq!(img.stats().ndv, mem.stats().ndv);
        assert_eq!(img.stats().minmax, mem.stats().minmax);
        // decode_rows reproduces the row store exactly.
        assert_eq!(img.decode_rows().unwrap(), r.rows());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_writer_matches_the_in_memory_builder() {
        let r = rel(53);
        let dir = tempdir();
        let mut w = DiskTableWriter::create(&dir, "t", names(&r), 8).unwrap();
        for row in r.rows() {
            w.push(row).unwrap();
        }
        let img = w.finish().unwrap();
        assert_eq!(img.decode_rows().unwrap(), r.rows());
        let mem = r.segments(8);
        assert_eq!(img.stats().rows, mem.stats().rows);
        assert_eq!(img.stats().ndv, mem.stats().ndv);
        assert_eq!(img.stats().pair_ndv, mem.stats().pair_ndv);
        assert_eq!(img.stats().bytes, mem.stats().bytes);
        assert_eq!(img.stats().minmax, mem.stats().minmax);
        // Arity is enforced per row.
        let mut w = DiskTableWriter::create(&dir, "u", vec!["a".into()], 4).unwrap();
        assert!(w.push(&[Value::Int(1), Value::Int(2)]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_zero_arity_stores_roundtrip() {
        let dir = tempdir();
        let w = DiskTableWriter::create(&dir, "empty", vec!["a".into()], 4).unwrap();
        let img = w.finish().unwrap();
        assert!(img.is_empty());
        assert_eq!(img.seg_count(), 0);
        assert_eq!(img.decode_rows().unwrap(), Vec::<Row>::new());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scratch_images_clean_up_on_drop() {
        let r = rel(10);
        let img = write_image_scratch(&r.segments(4), &names(&r)).unwrap();
        let dir = img.scratch_dir.clone().unwrap();
        assert!(dir.exists());
        assert_eq!(img.decode_rows().unwrap(), r.rows());
        drop(img);
        assert!(!dir.exists(), "scratch dir survived the image");
    }

    #[test]
    fn buffer_pool_shares_across_images_and_evicts_cold_segments() {
        let a = rel(32);
        let b = rel(32);
        let ia = write_image_scratch(&a.segments(8), &names(&a)).unwrap();
        let ib = write_image_scratch(&b.segments(8), &names(&b)).unwrap();
        assert_ne!(ia.id, ib.id, "image ids must be process-unique");
        let pool = Arc::new(BufferPool::new(3));
        let pa = DiskImageProvider::new(Arc::clone(&ia), Arc::clone(&pool));
        let pb = DiskImageProvider::new(Arc::clone(&ib), Arc::clone(&pool));
        let io = IoCounters::default();
        // Both relations' segments flow through the same slots.
        pa.segment(0, &io).unwrap();
        pb.segment(0, &io).unwrap();
        pa.segment(1, &io).unwrap();
        assert_eq!(pool.resident(), 3);
        assert_eq!(io.pool_misses.load(Ordering::Relaxed), 3);
        // Re-fetching a resident segment is a hit, no pages read.
        let pages = io.pages_read.load(Ordering::Relaxed);
        let d = pb.segment(0, &io).unwrap();
        assert_eq!(d.start, 0);
        assert_eq!(io.pool_hits.load(Ordering::Relaxed), 1);
        assert_eq!(io.pages_read.load(Ordering::Relaxed), pages);
        // A fourth distinct segment forces an eviction; touring keeps
        // the pool at capacity and the data correct.
        pb.segment(1, &io).unwrap();
        assert_eq!(pool.resident(), 3);
        for seg in 0..4 {
            let d = pa.segment(seg, &io).unwrap();
            assert_eq!(d.cols[0].get(0), Value::Int(seg as i64 * 8));
        }
        assert!(io.pool_misses.load(Ordering::Relaxed) > 4);
    }

    #[test]
    fn pool_registry_shares_by_capacity() {
        let a = pool_for(7);
        let b = pool_for(7);
        let c = pool_for(9);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.cap(), 9);
    }

    #[test]
    fn concurrent_pool_loads_dedup_per_key() {
        let r = rel(64);
        let img = write_image_scratch(&r.segments(8), &names(&r)).unwrap();
        let pool = Arc::new(BufferPool::new(8));
        let io = Arc::new(IoCounters::default());
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let (img, pool, io, barrier) = (
                    Arc::clone(&img),
                    Arc::clone(&pool),
                    Arc::clone(&io),
                    Arc::clone(&barrier),
                );
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..8 {
                        let seg = (i + w * 2) % 8;
                        let p = DiskImageProvider::new(Arc::clone(&img), Arc::clone(&pool));
                        let d = p.segment(seg, &io).unwrap();
                        assert_eq!(d.start, seg * 8);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        // Capacity ≥ segment count: every segment is loaded exactly once
        // across all 4 workers (the in-flight latch dedups races).
        assert_eq!(io.pool_misses.load(Ordering::Relaxed), 8);
        assert_eq!(
            io.pool_hits.load(Ordering::Relaxed),
            4 * 8 - 8,
            "every non-first fetch must be a hit"
        );
    }

    #[test]
    fn failed_loads_release_the_in_flight_latch() {
        let pool = BufferPool::new(2);
        let io = IoCounters::default();
        let key = (u64::MAX, 0);
        let err = pool
            .get(key, &io, || Err(Error::Io("load failed".into())))
            .unwrap_err();
        assert_eq!(err, Error::Io("load failed".into()));
        assert_eq!(pool.in_flight_len(), 0, "failed load leaked its latch");
        // The key stays fetchable: a later load succeeds and installs.
        let d = pool
            .get(key, &io, || {
                Ok(Arc::new(DecodedSegment {
                    start: 0,
                    len: 0,
                    cols: Vec::new(),
                    bytes: 0,
                }))
            })
            .unwrap();
        assert_eq!(d.len, 0);
        assert_eq!(pool.in_flight_len(), 0);
        assert_eq!(pool.resident(), 1);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "urel-store-test-{}-{}",
            std::process::id(),
            SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }
}
