//! CSV import/export for relations.
//!
//! A small but real interchange path: header row with column names,
//! RFC-4180-style quoting for fields containing commas/quotes/newlines.
//! Integers parse to [`Value::Int`], the literal `NULL` to [`Value::Null`],
//! everything else to strings. Round-trips are exact for the engine's
//! value model (strings that *look* like integers come back as integers —
//! callers needing exact string typing should quote upstream).

use crate::catalog::{EngineConfig, StorageMode};
use crate::error::{Error, Result};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::segment::SegmentedBuilder;
use crate::store::DiskTableWriter;
use crate::value::Value;
use std::io::{BufRead, Write};
use std::sync::Arc;

/// Write a relation as CSV (header + rows).
pub fn write_csv(rel: &Relation, out: &mut impl Write) -> std::io::Result<()> {
    let header: Vec<String> = rel
        .schema()
        .columns()
        .iter()
        .map(|c| escape(&c.to_string()))
        .collect();
    writeln!(out, "{}", header.join(","))?;
    for row in rel.rows() {
        let fields: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => "NULL".to_string(),
                Value::Bool(b) => b.to_string(),
                Value::Int(i) => i.to_string(),
                Value::Str(s) => escape(s),
            })
            .collect();
        writeln!(out, "{}", fields.join(","))?;
    }
    Ok(())
}

/// Read a relation from CSV (header defines the schema).
///
/// Under a segmented default storage mode the rows are encoded into
/// segments as they stream in; under [`StorageMode::Disk`] they stream
/// straight into an on-disk segment store ([`DiskTableWriter`]) and the
/// returned relation is disk-backed — the row store is never
/// materialized during the load.
pub fn read_csv(input: &mut impl BufRead) -> Result<Relation> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| Error::Invalid("empty CSV input".into()))?
        .map_err(|e| Error::Invalid(format!("io error: {e}")))?;
    let names: Vec<String> = split_line(&header)?.into_iter().map(|(n, _)| n).collect();
    let config = EngineConfig::default();
    let mut writer = if config.storage == StorageMode::Disk {
        Some(DiskTableWriter::create_scratch(
            "csv",
            names.clone(),
            config.segment_rows,
        )?)
    } else {
        None
    };
    let mut rel = Relation::empty(Schema::named(&names));
    // Under a segmented default storage mode, encode segments while the
    // rows stream in so the first scan never pays a bulk re-encode pass.
    let mut builder = (writer.is_none() && config.storage != StorageMode::Plain)
        .then(|| SegmentedBuilder::new(names.len(), config.segment_rows));
    for line in lines {
        let line = line.map_err(|e| Error::Invalid(format!("io error: {e}")))?;
        if line.is_empty() {
            continue;
        }
        let fields = split_line(&line)?;
        if fields.len() != names.len() {
            return Err(Error::ArityMismatch {
                expected: names.len(),
                got: fields.len(),
            });
        }
        let row: Vec<Value> = fields
            .into_iter()
            .map(|(f, quoted)| parse_value(&f, quoted))
            .collect();
        if let Some(w) = writer.as_mut() {
            w.push(&row)?;
            continue;
        }
        if let Some(b) = builder.as_mut() {
            b.push(&row);
        }
        rel.push(row)?;
    }
    if let Some(w) = writer {
        return Ok(Relation::from_disk_image(w.finish()?));
    }
    // After the last push: `push` invalidates cached images.
    if let Some(b) = builder {
        rel.attach_segments(Arc::new(b.finish()));
    }
    Ok(rel)
}

/// Quoted fields are always strings; unquoted fields are type-sniffed.
/// Strings go through the global interner: CSV string columns are
/// typically low-cardinality (dictionary-coded domains), so repeated
/// values share one `Arc<str>` and vectorized equality over the loaded
/// columns can compare pointers first. Note the pool lives for the
/// process ([`crate::value::intern`]): a service ingesting unbounded
/// unique-key CSVs should load those columns through its own path.
fn parse_value(field: &str, quoted: bool) -> Value {
    if quoted {
        return Value::interned(field);
    }
    if field == "NULL" {
        return Value::Null;
    }
    if field == "true" {
        return Value::Bool(true);
    }
    if field == "false" {
        return Value::Bool(false);
    }
    if let Ok(i) = field.parse::<i64>() {
        return Value::Int(i);
    }
    Value::interned(field)
}

/// Quote when the bare text would parse as something other than itself.
fn escape(s: &str) -> String {
    let needs_quotes = s.contains([',', '"', '\n'])
        || s == "NULL"
        || s == "true"
        || s == "false"
        || s.parse::<i64>().is_ok()
        || s.is_empty();
    if needs_quotes {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Split one CSV line honoring double-quoted fields; each field reports
/// whether it was quoted.
fn split_line(line: &str) -> Result<Vec<(String, bool)>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    let mut was_quoted = false;
    while let Some(c) = chars.next() {
        match (c, in_quotes) {
            ('"', false) if cur.is_empty() && !was_quoted => {
                in_quotes = true;
                was_quoted = true;
            }
            ('"', true) => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            (',', false) => {
                fields.push((std::mem::take(&mut cur), was_quoted));
                was_quoted = false;
            }
            (c, _) => cur.push(c),
        }
    }
    if in_quotes {
        return Err(Error::Invalid(format!(
            "unterminated quote in CSV line: {line}"
        )));
    }
    fields.push((cur, was_quoted));
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        Relation::from_rows(
            ["id", "name", "note"],
            vec![
                vec![Value::Int(1), Value::str("plain"), Value::Null],
                vec![
                    Value::Int(-2),
                    Value::str("with, comma"),
                    Value::str("q\"uote"),
                ],
                vec![Value::Int(3), Value::str("NULL"), Value::Bool(true)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let rel = sample();
        let mut buf = Vec::new();
        write_csv(&rel, &mut buf).unwrap();
        let back = read_csv(&mut buf.as_slice()).unwrap();
        assert_eq!(back.schema().to_string(), rel.schema().to_string());
        assert!(back.set_eq(&rel), "{back} vs {rel}");
    }

    #[test]
    fn quoting_rules() {
        let mut buf = Vec::new();
        write_csv(&sample(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"with, comma\""));
        assert!(text.contains("\"q\"\"uote\""));
        // The *string* "NULL" is quoted to distinguish it from null.
        assert!(text.contains("\"NULL\""));
    }

    #[test]
    fn rejects_ragged_rows_and_bad_quotes() {
        let mut bad = "a,b\n1\n".as_bytes();
        assert!(matches!(
            read_csv(&mut bad),
            Err(Error::ArityMismatch { .. })
        ));
        let mut unterminated = "a\n\"oops\n".as_bytes();
        assert!(read_csv(&mut unterminated).is_err());
        let mut empty = "".as_bytes();
        assert!(read_csv(&mut empty).is_err());
    }

    #[test]
    fn loaded_strings_are_interned() {
        let mut a = "seg\nBUILDING-IO\nBUILDING-IO\n".as_bytes();
        let rel = read_csv(&mut a).unwrap();
        let (Value::Str(s0), Value::Str(s1)) = (&rel.rows()[0][0], &rel.rows()[1][0]) else {
            panic!("strings expected");
        };
        assert!(std::sync::Arc::ptr_eq(s0, s1), "same text, one allocation");
        // ...and across separate loads.
        let mut b = "seg\nBUILDING-IO\n".as_bytes();
        let rel2 = read_csv(&mut b).unwrap();
        let Value::Str(s2) = &rel2.rows()[0][0] else {
            panic!("string expected");
        };
        assert!(std::sync::Arc::ptr_eq(s0, s2));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut input = "a\n1\n\n2\n".as_bytes();
        let rel = read_csv(&mut input).unwrap();
        assert_eq!(rel.len(), 2);
    }
}
