//! Admission control for concurrent query execution.
//!
//! A process serving many sessions over one engine needs a gate between
//! "a request arrived" and "a query is executing": without one, every
//! concurrent request fans out over the shared [`crate::TaskPool`] and
//! the buffer pool at once, and a single heavy query queued behind
//! dozens of its clones starves the fleet. The [`AdmissionGate`] bounds
//! how many queries *execute* concurrently and how many may *wait*;
//! everything beyond those bounds is shed immediately with
//! [`Error::Cancelled`].
//!
//! The gate sits strictly **before** execution resources: a request
//! that is shed — queue full, or its deadline expired while it waited —
//! has never touched a [`crate::TaskPool`] worker, never leased a
//! buffer-pool slot, and never created a spill directory. That ordering
//! is the contract the server's deadline semantics rely on (a queued
//! request past its deadline must fail with `Error::Cancelled` and
//! leak nothing), and `tests/server.rs` pins it with
//! [`crate::fault::assert_no_leaks`].
//!
//! Blocking is a plain `Mutex` + `Condvar` pair: admission happens per
//! request (milliseconds apart), never per row, so lock-free cleverness
//! would buy nothing. Fairness is FIFO-by-wakeup — `notify_all` plus a
//! re-check loop — which is enough at the queue depths the gate allows.

use crate::error::{Error, Result};
use crate::fault::lock_recover;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Counters the gate maintains; all monotone except `in_flight`.
/// Snapshot with [`AdmissionGate::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests that acquired an execution slot.
    pub admitted: usize,
    /// Requests that had to wait for a slot before admission.
    pub queued: usize,
    /// Requests shed because the wait queue was already full.
    pub shed_queue_full: usize,
    /// Requests shed because their deadline expired while queued.
    pub shed_deadline: usize,
    /// Queries executing right now.
    pub in_flight: usize,
    /// High-water mark of concurrently executing queries.
    pub peak_in_flight: usize,
}

impl AdmissionStats {
    /// Total shed requests, whatever the reason.
    pub fn shed(&self) -> usize {
        self.shed_queue_full + self.shed_deadline
    }
}

/// Interior state guarded by the gate's mutex.
#[derive(Default)]
struct GateState {
    in_flight: usize,
    waiting: usize,
    stats: AdmissionStats,
}

/// A bounded gate in front of query execution: at most `max_concurrent`
/// queries run at once, at most `max_queue` wait for a slot, and
/// everything else is shed with [`Error::Cancelled`]. See the module
/// docs for the resource-ordering contract.
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<GateState>,
    freed: Condvar,
    max_concurrent: usize,
    max_queue: usize,
}

impl std::fmt::Debug for GateState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GateState")
            .field("in_flight", &self.in_flight)
            .field("waiting", &self.waiting)
            .finish()
    }
}

impl AdmissionGate {
    /// A gate admitting `max_concurrent` concurrent queries (floored
    /// at 1) with a wait queue of `max_queue` requests (0 = shed the
    /// moment every slot is busy).
    pub fn new(max_concurrent: usize, max_queue: usize) -> Arc<AdmissionGate> {
        Arc::new(AdmissionGate {
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            max_concurrent: max_concurrent.max(1),
            max_queue,
        })
    }

    /// The concurrent-execution bound.
    pub fn max_concurrent(&self) -> usize {
        self.max_concurrent
    }

    /// The wait-queue bound.
    pub fn max_queue(&self) -> usize {
        self.max_queue
    }

    /// Acquire an execution slot, waiting until one frees up or
    /// `deadline` passes. Sheds with [`Error::Cancelled`] when the
    /// queue is full on arrival or the deadline expires while queued —
    /// in both cases without having touched any execution resource.
    /// The returned permit releases the slot on drop (unwind included).
    pub fn acquire(self: &Arc<Self>, deadline: Option<Instant>) -> Result<AdmissionPermit> {
        let mut st = lock_recover(&self.state);
        if st.in_flight < self.max_concurrent {
            return Ok(self.admit(&mut st));
        }
        if st.waiting >= self.max_queue {
            st.stats.shed_queue_full += 1;
            return Err(Error::Cancelled(format!(
                "shed: admission queue full ({} executing, {} queued)",
                st.in_flight, st.waiting
            )));
        }
        st.waiting += 1;
        st.stats.queued += 1;
        loop {
            if st.in_flight < self.max_concurrent {
                st.waiting -= 1;
                return Ok(self.admit(&mut st));
            }
            match deadline {
                None => st = self.freed.wait(st).unwrap_or_else(|e| e.into_inner()),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        st.waiting -= 1;
                        st.stats.shed_deadline += 1;
                        return Err(Error::Cancelled(
                            "shed: deadline expired while queued for admission".into(),
                        ));
                    }
                    let (guard, _timeout) = self
                        .freed
                        .wait_timeout(st, d - now)
                        .unwrap_or_else(|e| e.into_inner());
                    st = guard;
                }
            }
        }
    }

    /// Record an admission under the held lock and hand out the permit.
    fn admit(self: &Arc<Self>, st: &mut GateState) -> AdmissionPermit {
        st.in_flight += 1;
        st.stats.admitted += 1;
        st.stats.peak_in_flight = st.stats.peak_in_flight.max(st.in_flight);
        AdmissionPermit {
            gate: Arc::clone(self),
        }
    }

    /// Snapshot the counters (`in_flight` reflects this instant).
    pub fn stats(&self) -> AdmissionStats {
        let st = lock_recover(&self.state);
        AdmissionStats {
            in_flight: st.in_flight,
            ..st.stats
        }
    }
}

/// An execution slot held by an admitted query; dropping it (normally
/// or during unwind) frees the slot and wakes one queued request.
#[derive(Debug)]
pub struct AdmissionPermit {
    gate: Arc<AdmissionGate>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut st = lock_recover(&self.gate.state);
        st.in_flight -= 1;
        drop(st);
        // notify_all (not _one): a timed-out waiter that woke for its
        // deadline check consumes no slot, so a single notify could be
        // lost on it while a live waiter sleeps on.
        self.gate.freed.notify_all();
    }
}

/// A global shed counter independent of any one gate, for harnesses
/// that aggregate across servers (test hook; monotone).
static TOTAL_SHED: AtomicUsize = AtomicUsize::new(0);

/// Record `n` shed requests in the process-wide counter.
pub fn note_shed(n: usize) {
    TOTAL_SHED.fetch_add(n, Ordering::Relaxed);
}

/// The process-wide shed count.
pub fn total_shed() -> usize {
    TOTAL_SHED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn admits_up_to_the_bound_then_sheds_with_empty_queue() {
        let gate = AdmissionGate::new(2, 0);
        let a = gate.acquire(None).unwrap();
        let b = gate.acquire(None).unwrap();
        let err = gate.acquire(None).unwrap_err();
        assert!(matches!(err, Error::Cancelled(_)), "{err}");
        let s = gate.stats();
        assert_eq!((s.admitted, s.shed_queue_full, s.in_flight), (2, 1, 2));
        drop(a);
        let _c = gate.acquire(None).unwrap();
        drop(b);
        assert_eq!(gate.stats().in_flight, 1);
        assert_eq!(gate.stats().peak_in_flight, 2);
    }

    #[test]
    fn queued_request_admits_once_a_slot_frees() {
        let gate = AdmissionGate::new(1, 4);
        let held = gate.acquire(None).unwrap();
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g2.acquire(None).map(|_| ()));
        // Let the waiter actually queue before freeing the slot.
        while gate.stats().queued == 0 {
            std::thread::yield_now();
        }
        drop(held);
        waiter.join().unwrap().unwrap();
        let s = gate.stats();
        assert_eq!((s.admitted, s.queued, s.shed()), (2, 1, 0));
        assert_eq!(s.in_flight, 0);
    }

    #[test]
    fn deadline_expiring_while_queued_sheds_cancelled() {
        let gate = AdmissionGate::new(1, 4);
        let _held = gate.acquire(None).unwrap();
        let deadline = Instant::now() + Duration::from_millis(30);
        let err = gate.acquire(Some(deadline)).unwrap_err();
        match err {
            Error::Cancelled(msg) => assert!(msg.contains("deadline"), "{msg}"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        let s = gate.stats();
        assert_eq!(s.shed_deadline, 1);
        assert_eq!(s.in_flight, 1);
        // The shed request left no queue residue.
        assert_eq!(lock_recover(&gate.state).waiting, 0);
    }

    #[test]
    fn already_expired_deadline_sheds_without_waiting() {
        let gate = AdmissionGate::new(1, 4);
        let _held = gate.acquire(None).unwrap();
        let t0 = Instant::now();
        let err = gate.acquire(Some(t0)).unwrap_err();
        assert!(matches!(err, Error::Cancelled(_)));
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn permit_drop_during_unwind_frees_the_slot() {
        let gate = AdmissionGate::new(1, 0);
        let g2 = Arc::clone(&gate);
        let _ = std::panic::catch_unwind(move || {
            let _p = g2.acquire(None).unwrap();
            panic!("query died");
        });
        // Slot must be free again.
        assert_eq!(gate.stats().in_flight, 0);
        let _p = gate.acquire(None).unwrap();
    }

    #[test]
    fn stats_shed_totals_and_process_counter() {
        let s = AdmissionStats {
            shed_queue_full: 2,
            shed_deadline: 3,
            ..Default::default()
        };
        assert_eq!(s.shed(), 5);
        let before = total_shed();
        note_shed(4);
        assert_eq!(total_shed(), before + 4);
    }

    #[test]
    fn contended_gate_never_exceeds_bound() {
        let gate = AdmissionGate::new(3, 64);
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..16)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let peak = Arc::clone(&peak);
                let live = Arc::clone(&live);
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let _p = gate.acquire(None).unwrap();
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        live.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3);
        assert_eq!(gate.stats().admitted, 320);
        assert_eq!(gate.stats().in_flight, 0);
        assert!(gate.stats().peak_in_flight <= 3);
    }
}
