//! Scalar values.
//!
//! The engine is dynamically typed over a small closed set of scalar types.
//! Dates are represented as `Int` days since 1990-01-01 (helper:
//! [`date_to_days`]); monetary amounts as integer cents. Keeping everything
//! integer/string makes rows `Eq + Ord + Hash`, which the hash joins, set
//! operations and test oracles rely on.

use crate::fxhash::FxHashSet;
use std::cmp::Ordering;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// A scalar value. The ordering is total: `Null < Bool < Int < Str`.
///
/// The engine uses plain two-valued logic (`Null == Null` holds): the
/// paper's algebra is positive relational algebra over complete
/// representation relations, so SQL three-valued semantics are not needed —
/// `Null` only appears as the explicit padding value introduced by the
/// union translation.
#[derive(Clone, Debug)]
pub enum Value {
    /// Absent / padding value.
    Null,
    /// Boolean (result of predicate evaluation).
    Bool(bool),
    /// 64-bit integer; also carries dates (days) and money (cents).
    Int(i64),
    /// Interned string: `Arc<str>` makes cloning rows cheap.
    Str(Arc<str>),
}

/// The global string-interning pool (see [`intern`]).
static INTERNER: OnceLock<Mutex<FxHashSet<Arc<str>>>> = OnceLock::new();

/// Intern a string: all callers loading the same text share one
/// `Arc<str>` allocation. Loaders (CSV import, the TPC-H dictionary
/// sampler) intern so that repeated dictionary values — market segments,
/// nation names, ship modes — are deduplicated across relations, and so
/// that vectorized string equality can compare *pointers* first and only
/// fall back to bytes on a miss (see [`str_eq`]).
///
/// The pool is global and append-only; intern only values drawn from
/// bounded domains (dictionaries, enum-like columns), not unbounded
/// unique keys.
pub fn intern(s: &str) -> Arc<str> {
    let pool = INTERNER.get_or_init(|| Mutex::new(FxHashSet::default()));
    // Pool entries are only ever inserted whole, so a panic elsewhere
    // cannot leave it mid-update — recover rather than poison-cascade.
    let mut pool = crate::fault::lock_recover(pool);
    if let Some(hit) = pool.get(s) {
        return Arc::clone(hit);
    }
    let arc: Arc<str> = Arc::from(s);
    pool.insert(Arc::clone(&arc));
    arc
}

/// String equality with the pointer-first fast path interning enables:
/// two interned copies of the same text share one allocation, so most
/// equality checks on dictionary columns resolve without touching bytes.
#[inline]
pub fn str_eq(a: &Arc<str>, b: &Arc<str>) -> bool {
    Arc::ptr_eq(a, b) || a == b
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build a string value through the global interner (use at load
    /// time for values drawn from bounded domains; see [`intern`]).
    pub fn interned(s: impl AsRef<str>) -> Self {
        Value::Str(intern(s.as_ref()))
    }

    /// `true` if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an integer, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract a string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Approximate heap + inline footprint in bytes, used by the Figure 9
    /// database-size accounting.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Str(s) => s.len(),
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => str_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u8(self.rank());
        match self {
            Value::Null => {}
            Value::Bool(b) => state.write_u8(*b as u8),
            Value::Int(i) => state.write_i64(*i),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "⊥"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

/// Days from 1990-01-01 to the given proleptic Gregorian date.
///
/// Good for the whole TPC-H date range; panics on out-of-range months to
/// catch workload-definition typos early.
pub fn date_to_days(year: i64, month: u32, day: u32) -> i64 {
    assert!((1..=12).contains(&month), "month out of range: {month}");
    assert!((1..=31).contains(&day), "day out of range: {day}");
    // Howard Hinnant's days-from-civil, re-based from the Unix epoch
    // (1970-01-01) to 1990-01-01 (+7305 days).
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = ((month + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + day as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468 - 7_305
}

/// Parse `"YYYY-MM-DD"` into days since 1990-01-01 (see [`date_to_days`]).
pub fn parse_date(s: &str) -> Option<i64> {
    let mut parts = s.splitn(3, '-');
    let y: i64 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    Some(date_to_days(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_across_types() {
        let mut vs = vec![
            Value::str("a"),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::Int(-1),
            Value::str("A"),
            Value::Bool(false),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(false),
                Value::Bool(true),
                Value::Int(-1),
                Value::Int(3),
                Value::str("A"),
                Value::str("a"),
            ]
        );
    }

    #[test]
    fn null_equals_null() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
    }

    #[test]
    fn date_arithmetic_is_monotone() {
        let d1 = date_to_days(1994, 1, 1);
        let d2 = date_to_days(1994, 1, 2);
        let d3 = date_to_days(1994, 2, 1);
        let d4 = date_to_days(1995, 1, 1);
        assert_eq!(d2 - d1, 1);
        assert_eq!(d3 - d1, 31);
        assert_eq!(d4 - d1, 365); // 1994 is not a leap year
        assert_eq!(date_to_days(1990, 1, 1), 0);
        // 1992 and 1996 are leap years within 1990..2000: 10*365 + 2.
        assert_eq!(date_to_days(2000, 1, 1), 3652);
    }

    #[test]
    fn parse_date_matches_constructor() {
        assert_eq!(parse_date("1995-03-15"), Some(date_to_days(1995, 3, 15)));
        assert_eq!(parse_date("bogus"), None);
        assert_eq!(parse_date("1995-03"), None);
    }

    #[test]
    fn interner_dedupes_allocations() {
        let a = intern("MIDDLE EAST");
        let b = intern("MIDDLE EAST");
        assert!(Arc::ptr_eq(&a, &b));
        let (Value::Str(v1), Value::Str(v2)) =
            (Value::interned("BUILDING"), Value::interned("BUILDING"))
        else {
            panic!("interned() builds strings");
        };
        assert!(Arc::ptr_eq(&v1, &v2));
        // Interned and non-interned copies still compare equal by bytes.
        assert_eq!(Value::interned("x"), Value::str("x"));
        assert!(str_eq(&intern("y"), &Arc::from("y")));
        assert!(!str_eq(&intern("y"), &Arc::from("z")));
    }

    #[test]
    fn size_accounting() {
        assert_eq!(Value::Int(1).size_bytes(), 8);
        assert_eq!(Value::str("abcd").size_bytes(), 4);
        assert_eq!(Value::Null.size_bytes(), 1);
    }
}
