//! # urel-core — U-relations
//!
//! The primary contribution of *"Fast and Simple Relational Processing of
//! Uncertain Data"* (Antova, Jansen, Koch, Olteanu; ICDE 2008): a succinct,
//! purely relational, attribute-level representation system for uncertain
//! databases, with query processing by translation to plain relational
//! algebra.
//!
//! * [`world`] — world tables `W(Var, Rng)`, possible worlds, probabilities.
//! * [`descriptor`] — ws-descriptors and their padded relational encoding.
//! * [`urelation`] — U-relations `U[D; T; B]`, typed and encoded views.
//! * [`udb`] — U-relational databases, validity (Def. 2.2), and the
//!   possible-worlds semantics used as the test oracle.
//! * [`algebra`] — positive relational algebra + `poss` and its
//!   world-at-a-time reference evaluation.
//! * [`translate`] — the `[[·]]` translation of Figure 4 (σ→σ, π→π,
//!   ⋈→⋈ with α/ψ conditions, poss→π), partition pruning and merging.
//! * [`reduce`] — semijoin reduction (Proposition 3.3).
//! * [`normalize`] — Algorithm 1: descriptor normalization.
//! * [`certain`] — certain answers (Lemma 4.3), relationally and directly.
//! * [`prob`] — the probabilistic extension of Section 7: tuple confidence
//!   by exact variable elimination and Monte-Carlo estimation.
//! * [`construct`] — Theorem 2.4 (completeness), or-set relations, and
//!   other constructors.

pub mod algebra;
pub mod certain;
pub mod construct;
pub mod descriptor;
pub mod error;
pub mod normalize;
pub mod prob;
pub mod reduce;
pub mod translate;
pub mod udb;
pub mod urelation;
pub mod world;
pub mod worldops;

pub use algebra::{oracle_certain, oracle_eval, oracle_possible, table, table_as, UQuery};
pub use descriptor::WsDescriptor;
pub use error::{Error, Result};
pub use prob::ConfidenceMethod;
pub use translate::{
    certain_with_confidence, evaluate, evaluate_with, possible, possible_with_confidence,
    translate, PreparedDb, TPlan, TranslateOptions,
};
pub use udb::{figure1_database, UDatabase};
pub use urelation::{URelation, URow};
pub use world::{Valuation, Var, WorldTable, TOP};
pub use worldops::{condition_domain, expand_answers, repair_key};
