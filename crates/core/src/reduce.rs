//! Reduction of U-relational databases (Proposition 3.3).
//!
//! A database is *reduced* when every U-relation row can be completed to a
//! full tuple in at least one world. Reduction filters each partition by
//! semijoins with the sibling partitions of the same relation (conditions
//! α: same tuple id, ψ: consistent descriptors), iterated to a fixpoint
//! since removals can cascade.

use crate::error::Result;
use crate::udb::UDatabase;
use crate::urelation::URow;
use std::collections::BTreeMap;

/// Remove rows that cannot find a consistent same-tuple partner in every
/// sibling partition. Returns the number of rows removed.
pub fn reduce(db: &mut UDatabase) -> Result<usize> {
    let rels: Vec<String> = db.relations().map(str::to_string).collect();
    let mut removed = 0;
    for rel in rels {
        loop {
            let parts = db.partitions_of(rel.as_str())?;
            let n = parts.len();
            if n <= 1 {
                break;
            }
            // For each partition, find the surviving row indices.
            let mut keep: Vec<Vec<bool>> = Vec::with_capacity(n);
            for (i, p) in parts.iter().enumerate() {
                let mut flags = vec![true; p.len()];
                for (j, q) in parts.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    // Semijoin: row r of p survives this sibling iff q has
                    // a row with the same tid and a consistent descriptor.
                    let mut by_tid: BTreeMap<i64, Vec<&URow>> = BTreeMap::new();
                    for r in q.rows() {
                        by_tid.entry(r.tids[0]).or_default().push(r);
                    }
                    for (k, r) in p.rows().iter().enumerate() {
                        if !flags[k] {
                            continue;
                        }
                        let ok = by_tid.get(&r.tids[0]).is_some_and(|group| {
                            group.iter().any(|s| s.desc.consistent_with(&r.desc))
                        });
                        if !ok {
                            flags[k] = false;
                        }
                    }
                }
                keep.push(flags);
            }
            let mut changed = false;
            let parts = db.partitions_of_mut(rel.as_str())?;
            for (p, flags) in parts.iter_mut().zip(&keep) {
                if flags.iter().any(|&f| !f) {
                    changed = true;
                    let mut it = flags.iter();
                    p.rows_mut().retain(|_| *it.next().unwrap());
                    removed += flags.iter().filter(|&&f| !f).count();
                }
            }
            if !changed {
                break;
            }
        }
    }
    Ok(removed)
}

/// Is the database already reduced (a single semijoin pass removes
/// nothing)?
pub fn is_reduced(db: &UDatabase) -> Result<bool> {
    let mut copy = db.clone();
    Ok(reduce(&mut copy)? == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::WsDescriptor;
    use crate::udb::figure1_database;
    use crate::urelation::URelation;
    use crate::world::{Var, WorldTable};
    use urel_relalg::Value;

    /// Example 3.2's non-reduced database.
    fn example_3_2() -> UDatabase {
        let mut w = WorldTable::new();
        w.add_var(Var(1), vec![1, 2]).unwrap();
        w.add_var(Var(2), vec![1, 2]).unwrap();
        let mut db = UDatabase::new(w);
        db.add_relation("r", ["a", "b"]).unwrap();
        let mut u1 = URelation::partition("u1", ["a"]);
        u1.push_simple(
            WsDescriptor::singleton(Var(1), 1),
            1,
            vec![Value::str("a1")],
        )
        .unwrap();
        u1.push_simple(
            WsDescriptor::singleton(Var(2), 1),
            2,
            vec![Value::str("a2")],
        )
        .unwrap();
        db.add_partition("r", u1).unwrap();
        let mut u2 = URelation::partition("u2", ["b"]);
        u2.push_simple(
            WsDescriptor::singleton(Var(1), 1),
            1,
            vec![Value::str("b1")],
        )
        .unwrap();
        u2.push_simple(
            WsDescriptor::singleton(Var(1), 2),
            1,
            vec![Value::str("b2")],
        )
        .unwrap();
        db.add_partition("r", u2).unwrap();
        db
    }

    #[test]
    fn example_3_2_reduces_to_one_row_each() {
        let mut db = example_3_2();
        assert!(!is_reduced(&db).unwrap());
        let removed = reduce(&mut db).unwrap();
        // u1's second tuple (tid 2, no B partner) and u2's second tuple
        // (x1 ↦ 2 conflicts with u1's x1 ↦ 1 for tid 1) are gone.
        assert_eq!(removed, 2);
        assert_eq!(db.partitions_of("r").unwrap()[0].len(), 1);
        assert_eq!(db.partitions_of("r").unwrap()[1].len(), 1);
        assert!(is_reduced(&db).unwrap());
    }

    #[test]
    fn reduction_preserves_the_world_set() {
        let mut db = example_3_2();
        let before = db.possible_worlds(16).unwrap();
        reduce(&mut db).unwrap();
        let after = db.possible_worlds(16).unwrap();
        assert_eq!(before.len(), after.len());
        for ((f1, w1), (f2, w2)) in before.iter().zip(&after) {
            assert_eq!(f1, f2);
            assert!(w1["r"].set_eq(&w2["r"]));
        }
    }

    #[test]
    fn figure1_is_already_reduced() {
        let mut db = figure1_database();
        assert!(is_reduced(&db).unwrap());
        assert_eq!(reduce(&mut db).unwrap(), 0);
    }

    #[test]
    fn cascading_removals_reach_a_fixpoint() {
        // u1(tid 1) depends on u2(tid 1) which depends on a missing
        // u3 partner — the removal must cascade back to u1.
        let mut w = WorldTable::new();
        w.add_var(Var(1), vec![1, 2]).unwrap();
        let mut db = UDatabase::new(w);
        db.add_relation("r", ["a", "b", "c"]).unwrap();
        let mut u1 = URelation::partition("u1", ["a"]);
        u1.push_simple(WsDescriptor::empty(), 1, vec![Value::str("a")])
            .unwrap();
        db.add_partition("r", u1).unwrap();
        let mut u2 = URelation::partition("u2", ["b"]);
        u2.push_simple(WsDescriptor::empty(), 1, vec![Value::str("b")])
            .unwrap();
        db.add_partition("r", u2).unwrap();
        let u3 = URelation::partition("u3", ["c"]);
        // u3 is empty: nothing completes.
        db.add_partition("r", u3).unwrap();
        let removed = reduce(&mut db).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(db.total_rows(), 0);
    }
}
