//! U-relational databases (Definition 2.2) and their possible-worlds
//! semantics.
//!
//! A U-relational database is a tuple `(U₁,…,Uₙ, W)`: a world table plus
//! vertical partitions per logical relation. [`UDatabase::instantiate`]
//! implements the semantics literally — choose a total valuation, keep the
//! rows whose descriptors it extends, assemble tuples by tuple id, drop
//! partial tuples — and is the ground-truth oracle every query-processing
//! component is tested against.

use crate::descriptor::WsDescriptor;
use crate::error::{Error, Result};
use crate::urelation::URelation;
use crate::world::{Valuation, WorldTable};
use std::collections::BTreeMap;
use urel_relalg::{Catalog, Relation, Schema, Value};

/// A U-relational database.
#[derive(Clone, Debug, PartialEq)]
pub struct UDatabase {
    /// The world table `W`.
    pub world: WorldTable,
    /// Logical relation name → attribute list.
    schema: BTreeMap<String, Vec<String>>,
    /// Logical relation name → vertical partitions.
    partitions: BTreeMap<String, Vec<URelation>>,
}

impl UDatabase {
    /// Database over a world table, initially with no relations.
    pub fn new(world: WorldTable) -> Self {
        UDatabase {
            world,
            schema: BTreeMap::new(),
            partitions: BTreeMap::new(),
        }
    }

    /// Declare a logical relation `R[A₁,…,Aₙ]`.
    pub fn add_relation(
        &mut self,
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<()> {
        let name = name.into();
        if self.schema.contains_key(&name) {
            return Err(Error::InvalidQuery(format!(
                "relation `{name}` already declared"
            )));
        }
        self.schema
            .insert(name.clone(), attrs.into_iter().map(Into::into).collect());
        self.partitions.insert(name, Vec::new());
        Ok(())
    }

    /// Attach a vertical partition to a declared relation. The partition
    /// must have the single `tid` tuple-id column and value columns drawn
    /// from the relation's attributes.
    pub fn add_partition(&mut self, rel: &str, partition: URelation) -> Result<()> {
        let attrs = self
            .schema
            .get(rel)
            .ok_or_else(|| Error::InvalidQuery(format!("unknown relation `{rel}`")))?;
        if partition.tid_cols() != ["tid".to_string()] {
            return Err(Error::InvalidDatabase(format!(
                "partition `{}` must have exactly the `tid` tuple-id column",
                partition.name
            )));
        }
        for c in partition.value_cols() {
            if !attrs.contains(c) {
                return Err(Error::InvalidDatabase(format!(
                    "partition `{}` column `{c}` is not an attribute of `{rel}`",
                    partition.name
                )));
            }
        }
        self.partitions.get_mut(rel).unwrap().push(partition);
        Ok(())
    }

    /// Logical relation names.
    pub fn relations(&self) -> impl Iterator<Item = &str> {
        self.schema.keys().map(String::as_str)
    }

    /// Attributes of a logical relation.
    pub fn attrs(&self, rel: &str) -> Result<&[String]> {
        self.schema
            .get(rel)
            .map(Vec::as_slice)
            .ok_or_else(|| Error::InvalidQuery(format!("unknown relation `{rel}`")))
    }

    /// The vertical partitions of a relation.
    pub fn partitions_of(&self, rel: &str) -> Result<&[URelation]> {
        self.partitions
            .get(rel)
            .map(Vec::as_slice)
            .ok_or_else(|| Error::InvalidQuery(format!("unknown relation `{rel}`")))
    }

    /// Mutable partitions (used by reduction / normalization).
    pub fn partitions_of_mut(&mut self, rel: &str) -> Result<&mut Vec<URelation>> {
        self.partitions
            .get_mut(rel)
            .ok_or_else(|| Error::InvalidQuery(format!("unknown relation `{rel}`")))
    }

    /// Validity (Definition 2.2):
    ///
    /// 1. every attribute of every relation is covered by some partition,
    /// 2. every descriptor's graph is a subset of `W`,
    /// 3. no two rows with consistent descriptors give a tuple field two
    ///    different values.
    pub fn validate(&self) -> Result<()> {
        for (rel, attrs) in &self.schema {
            let parts = &self.partitions[rel];
            for a in attrs {
                if !parts.iter().any(|p| p.value_cols().contains(a)) {
                    return Err(Error::InvalidDatabase(format!(
                        "attribute `{a}` of `{rel}` is not covered by any partition"
                    )));
                }
            }
            for p in parts {
                for row in p.rows() {
                    self.world.check_descriptor(&row.desc)?;
                }
            }
            // Pairwise field-consistency check, grouped by tuple id.
            for (i, pi) in parts.iter().enumerate() {
                for pj in parts.iter().skip(i) {
                    let shared: Vec<(usize, usize)> = pi
                        .value_cols()
                        .iter()
                        .enumerate()
                        .filter_map(|(ci, c)| {
                            pj.value_cols()
                                .iter()
                                .position(|d| d == c)
                                .map(|cj| (ci, cj))
                        })
                        .collect();
                    if shared.is_empty() {
                        continue;
                    }
                    let mut by_tid: BTreeMap<i64, Vec<&crate::urelation::URow>> = BTreeMap::new();
                    for r in pj.rows() {
                        by_tid.entry(r.tids[0]).or_default().push(r);
                    }
                    for r1 in pi.rows() {
                        let Some(group) = by_tid.get(&r1.tids[0]) else {
                            continue;
                        };
                        for r2 in group {
                            if std::ptr::eq(r1, *r2) {
                                continue;
                            }
                            if r1.desc.consistent_with(&r2.desc) {
                                for &(ci, cj) in &shared {
                                    if r1.vals[ci] != r2.vals[cj] {
                                        return Err(Error::InvalidDatabase(format!(
                                            "`{rel}` tuple {} field `{}` takes both {} and {} in a common world",
                                            r1.tids[0],
                                            pi.value_cols()[ci],
                                            r1.vals[ci],
                                            r2.vals[cj],
                                        )));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Does any tuple field carry a *partial* or-set — a non-empty set
    /// of defining rows whose descriptors do not jointly cover every
    /// world?
    ///
    /// Proposition 3.3's reduction guarantee assumes that a tuple
    /// present in a world has all of its fields defined there; a
    /// partial field breaks that assumption, and the Lemma 4.3
    /// `certain` path over-approximates on such databases.
    /// [`crate::certain::certain_answers`] uses this check to route
    /// them through exact world expansion instead. A field with *no*
    /// defining rows is not partial: the tuple never completes and the
    /// per-tuple-id field join drops it in every world.
    pub fn has_partial_fields(&self) -> Result<bool> {
        for (rel, attrs) in &self.schema {
            // (tid, attribute position) → descriptors of the rows that
            // define the field.
            let mut fields: BTreeMap<(i64, usize), Vec<WsDescriptor>> = BTreeMap::new();
            for p in &self.partitions[rel] {
                let positions: Vec<usize> = p
                    .value_cols()
                    .iter()
                    .map(|c| attrs.iter().position(|a| a == c).expect("validated"))
                    .collect();
                for row in p.rows() {
                    for &pos in &positions {
                        fields
                            .entry((row.tids[0], pos))
                            .or_default()
                            .push(row.desc.clone());
                    }
                }
            }
            for descs in fields.values() {
                if !crate::prob::covers_all_worlds(descs, &self.world)? {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// Materialize the possible world selected by a total valuation:
    /// the semantics of Section 2, verbatim. Tuples left partial (some
    /// field undefined) are removed.
    pub fn instantiate(&self, f: &Valuation) -> Result<BTreeMap<String, Relation>> {
        let mut out = BTreeMap::new();
        for (rel, attrs) in &self.schema {
            let mut fields: BTreeMap<i64, Vec<Option<Value>>> = BTreeMap::new();
            for p in &self.partitions[rel] {
                let positions: Vec<usize> = p
                    .value_cols()
                    .iter()
                    .map(|c| attrs.iter().position(|a| a == c).expect("validated"))
                    .collect();
                for row in p.rows() {
                    if !self.world.extends(f, &row.desc) {
                        continue;
                    }
                    let entry = fields
                        .entry(row.tids[0])
                        .or_insert_with(|| vec![None; attrs.len()]);
                    for (k, &pos) in positions.iter().enumerate() {
                        match &entry[pos] {
                            None => entry[pos] = Some(row.vals[k].clone()),
                            Some(existing) if *existing == row.vals[k] => {}
                            Some(existing) => {
                                return Err(Error::InvalidDatabase(format!(
                                    "`{rel}` tuple {} field `{}`: {} vs {}",
                                    row.tids[0], attrs[pos], existing, row.vals[k]
                                )))
                            }
                        }
                    }
                }
            }
            let mut rel_out = Relation::empty(Schema::named(attrs));
            for (_tid, vals) in fields {
                if vals.iter().all(Option::is_some) {
                    rel_out
                        .push(vals.into_iter().map(Option::unwrap).collect())
                        .expect("arity fixed");
                }
            }
            rel_out.dedup_in_place();
            out.insert(rel.clone(), rel_out);
        }
        Ok(out)
    }

    /// Enumerate all `(valuation, world instance)` pairs, erroring above
    /// `limit` worlds. This is the test oracle.
    pub fn possible_worlds(
        &self,
        limit: usize,
    ) -> Result<Vec<(Valuation, BTreeMap<String, Relation>)>> {
        let mut out = Vec::new();
        for f in self.world.worlds(limit)? {
            let inst = self.instantiate(&f)?;
            out.push((f, inst));
        }
        Ok(out)
    }

    /// Register every partition (relationally encoded) plus `W` in a fresh
    /// catalog — the database as an RDBMS sees it.
    pub fn to_catalog(&self) -> Catalog {
        let mut c = Catalog::new();
        for parts in self.partitions.values() {
            for p in parts {
                c.insert(p.name.clone(), p.encode());
            }
        }
        c.insert("w", self.world.encode());
        c
    }

    /// Encode once into a [`crate::PreparedDb`] for repeated querying:
    /// the catalog shares its base relations with every scan, so only the
    /// first query pays the encoding cost.
    pub fn prepare(&self) -> crate::PreparedDb<'_> {
        crate::PreparedDb::new(self)
    }

    /// Total representation size in bytes (partitions + world table).
    pub fn size_bytes(&self) -> usize {
        self.partitions
            .values()
            .flatten()
            .map(URelation::size_bytes)
            .sum::<usize>()
            + self.world.size_bytes()
    }

    /// Total number of U-relation rows.
    pub fn total_rows(&self) -> usize {
        self.partitions.values().flatten().map(URelation::len).sum()
    }
}

/// Build the vehicles example of Figure 1 — used by tests, docs and the
/// quickstart example. Variables: `x` (1: vehicle b at position 2,
/// 2: at position 3), `y` (vehicle d's type), `z` (vehicle d's faction);
/// tuple ids 1–4 stand for vehicles a–d.
pub fn figure1_database() -> UDatabase {
    use crate::world::Var;
    let x = Var(1);
    let y = Var(2);
    let z = Var(3);
    let mut w = WorldTable::new();
    w.add_var(x, vec![1, 2]).unwrap();
    w.add_var(y, vec![1, 2]).unwrap();
    w.add_var(z, vec![1, 2]).unwrap();

    let mut db = UDatabase::new(w);
    db.add_relation("r", ["id", "type", "faction"]).unwrap();

    let (a, b, c, d) = (1, 2, 3, 4);
    let e = WsDescriptor::empty;
    let s = WsDescriptor::singleton;

    let mut u1 = URelation::partition("u1", ["id"]);
    u1.push_simple(e(), a, vec![Value::Int(1)]).unwrap();
    u1.push_simple(s(x, 1), b, vec![Value::Int(2)]).unwrap();
    u1.push_simple(s(x, 2), b, vec![Value::Int(3)]).unwrap();
    u1.push_simple(s(x, 1), c, vec![Value::Int(3)]).unwrap();
    u1.push_simple(s(x, 2), c, vec![Value::Int(2)]).unwrap();
    u1.push_simple(e(), d, vec![Value::Int(4)]).unwrap();
    db.add_partition("r", u1).unwrap();

    let mut u2 = URelation::partition("u2", ["type"]);
    u2.push_simple(e(), a, vec![Value::str("Tank")]).unwrap();
    u2.push_simple(e(), b, vec![Value::str("Transport")])
        .unwrap();
    u2.push_simple(e(), c, vec![Value::str("Tank")]).unwrap();
    u2.push_simple(s(y, 1), d, vec![Value::str("Tank")])
        .unwrap();
    u2.push_simple(s(y, 2), d, vec![Value::str("Transport")])
        .unwrap();
    db.add_partition("r", u2).unwrap();

    let mut u3 = URelation::partition("u3", ["faction"]);
    u3.push_simple(e(), a, vec![Value::str("Friend")]).unwrap();
    u3.push_simple(e(), b, vec![Value::str("Friend")]).unwrap();
    u3.push_simple(e(), c, vec![Value::str("Enemy")]).unwrap();
    u3.push_simple(s(z, 1), d, vec![Value::str("Friend")])
        .unwrap();
    u3.push_simple(s(z, 2), d, vec![Value::str("Enemy")])
        .unwrap();
    db.add_partition("r", u3).unwrap();

    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Var;

    #[test]
    fn figure1_has_eight_worlds() {
        let db = figure1_database();
        db.validate().unwrap();
        assert_eq!(db.world.world_count_exact(), Some(8));
        let worlds = db.possible_worlds(16).unwrap();
        assert_eq!(worlds.len(), 8);
        // Every world has exactly 4 vehicles.
        for (_, inst) in &worlds {
            assert_eq!(inst["r"].len(), 4);
        }
    }

    #[test]
    fn instantiation_matches_example_1_1() {
        // θ = {x ↦ 1, y ↦ 1, z ↦ 1}: vehicle 2 is the transport (b),
        // vehicle 3 the enemy tank (c), vehicle 4 a friendly tank.
        let db = figure1_database();
        let f: Valuation = [(Var(1), 1), (Var(2), 1), (Var(3), 1)]
            .into_iter()
            .collect();
        let inst = db.instantiate(&f).unwrap();
        let r = inst["r"].sorted_set();
        let expect = Relation::from_rows(
            ["id", "type", "faction"],
            vec![
                vec![Value::Int(1), Value::str("Tank"), Value::str("Friend")],
                vec![Value::Int(2), Value::str("Transport"), Value::str("Friend")],
                vec![Value::Int(3), Value::str("Tank"), Value::str("Enemy")],
                vec![Value::Int(4), Value::str("Tank"), Value::str("Friend")],
            ],
        )
        .unwrap();
        assert!(r.set_eq(&expect));
    }

    #[test]
    fn partial_tuples_are_dropped() {
        // Example 3.2's non-reduced database: tuples that cannot complete
        // disappear from the instantiated worlds.
        let mut w = WorldTable::new();
        w.add_var(Var(1), vec![1, 2]).unwrap();
        w.add_var(Var(2), vec![1, 2]).unwrap();
        let mut db = UDatabase::new(w);
        db.add_relation("r", ["a", "b"]).unwrap();
        let mut u1 = URelation::partition("u1", ["a"]);
        u1.push_simple(
            WsDescriptor::singleton(Var(1), 1),
            1,
            vec![Value::str("a1")],
        )
        .unwrap();
        u1.push_simple(
            WsDescriptor::singleton(Var(2), 1),
            2,
            vec![Value::str("a2")],
        )
        .unwrap();
        db.add_partition("r", u1).unwrap();
        let mut u2 = URelation::partition("u2", ["b"]);
        u2.push_simple(
            WsDescriptor::singleton(Var(1), 1),
            1,
            vec![Value::str("b1")],
        )
        .unwrap();
        u2.push_simple(
            WsDescriptor::singleton(Var(1), 2),
            1,
            vec![Value::str("b2")],
        )
        .unwrap();
        db.add_partition("r", u2).unwrap();
        db.validate().unwrap();

        // Tuple 2 never completes (no B field); tuple 1 completes only
        // when x1 ↦ 1.
        for (f, inst) in db.possible_worlds(16).unwrap() {
            let rows = inst["r"].len();
            if f[&Var(1)] == 1 {
                assert_eq!(rows, 1);
            } else {
                assert_eq!(rows, 0);
            }
        }
        // And the partial fields are detected: tuple 1's A field is only
        // defined under x1 ↦ 1.
        assert!(db.has_partial_fields().unwrap());
    }

    #[test]
    fn world_total_databases_have_no_partial_fields() {
        // Figure 1: every field is either unconditional or a full or-set
        // over its variable's domain.
        assert!(!figure1_database().has_partial_fields().unwrap());
    }

    #[test]
    fn validity_detects_contradictions() {
        // Example 2.3: same field forced to two values in a common world.
        let mut w = WorldTable::new();
        w.add_var(Var(1), vec![1, 2]).unwrap();
        w.add_var(Var(2), vec![1, 2]).unwrap();
        let mut db = UDatabase::new(w);
        db.add_relation("r", ["a", "b", "c"]).unwrap();
        let mut u1 = URelation::partition("u1", ["a", "b"]);
        u1.push_simple(
            WsDescriptor::singleton(Var(1), 1),
            1,
            vec![Value::str("a"), Value::str("b")],
        )
        .unwrap();
        db.add_partition("r", u1).unwrap();
        let mut u2 = URelation::partition("u2", ["b", "c"]);
        u2.push_simple(
            WsDescriptor::singleton(Var(2), 2),
            1,
            vec![Value::str("b'"), Value::str("c")],
        )
        .unwrap();
        db.add_partition("r", u2).unwrap();
        let err = db.validate().unwrap_err();
        assert!(matches!(err, Error::InvalidDatabase(_)), "{err}");
    }

    #[test]
    fn coverage_and_descriptor_checks() {
        let mut db = UDatabase::new(WorldTable::new());
        db.add_relation("r", ["a", "b"]).unwrap();
        let mut u = URelation::partition("u", ["a"]);
        u.push_simple(WsDescriptor::empty(), 1, vec![Value::Int(1)])
            .unwrap();
        db.add_partition("r", u).unwrap();
        assert!(db.validate().is_err(), "attribute b uncovered");

        let mut db2 = UDatabase::new(WorldTable::new());
        db2.add_relation("r", ["a"]).unwrap();
        let mut u = URelation::partition("u", ["a"]);
        u.push_simple(WsDescriptor::singleton(Var(7), 1), 1, vec![Value::Int(1)])
            .unwrap();
        db2.add_partition("r", u).unwrap();
        assert!(db2.validate().is_err(), "undeclared variable");
    }

    #[test]
    fn catalog_contains_partitions_and_w() {
        let db = figure1_database();
        let cat = db.to_catalog();
        assert!(cat.get("u1").is_ok());
        assert!(cat.get("u2").is_ok());
        assert!(cat.get("u3").is_ok());
        assert_eq!(cat.get("w").unwrap().len(), 6);
    }

    #[test]
    fn size_accounting_is_positive() {
        let db = figure1_database();
        assert!(db.size_bytes() > 0);
        assert_eq!(db.total_rows(), 16);
    }
}
