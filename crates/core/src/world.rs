//! World tables and possible worlds (Section 2).
//!
//! A world-set is represented by a set of variables over finite domains,
//! stored relationally as `W(Var, Rng)`. A *possible world* is a total
//! valuation of the variables; the world-set is the set of all total
//! valuations. The probabilistic extension of Section 7 adds a probability
//! column `P` to `W` with `Σ_v P(x ↦ v) = 1` per variable.

use crate::descriptor::WsDescriptor;
use crate::error::{Error, Result};
use std::collections::BTreeMap;
use urel_relalg::{Relation, Value};

/// A variable identifier. `Var(0)` is the reserved ⊤ variable with the
/// singleton domain `{0}`: the paper's "new variable with a singleton
/// domain" shortcut that lets the empty ws-descriptor stand for the entire
/// world-set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

/// The reserved always-true variable.
pub const TOP: Var = Var(0);

impl std::fmt::Display for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == TOP {
            write!(f, "⊤")
        } else {
            write!(f, "x{}", self.0)
        }
    }
}

/// A total valuation of the world table's variables — one possible world.
pub type Valuation = BTreeMap<Var, u64>;

/// The world table `W(Var, Rng)` (+ optional probabilities).
#[derive(Clone, Debug, PartialEq)]
pub struct WorldTable {
    /// Variable → sorted domain values.
    domains: BTreeMap<Var, Vec<u64>>,
    /// Variable → probabilities parallel to its domain (empty map when the
    /// database is non-probabilistic).
    probs: BTreeMap<Var, Vec<f64>>,
    next_var: u32,
}

impl Default for WorldTable {
    fn default() -> Self {
        WorldTable::new()
    }
}

impl WorldTable {
    /// Empty world table; ⊤ is pre-registered with domain `{0}`.
    pub fn new() -> Self {
        let mut domains = BTreeMap::new();
        domains.insert(TOP, vec![0]);
        WorldTable {
            domains,
            probs: BTreeMap::new(),
            next_var: 1,
        }
    }

    /// Register a variable with an explicit domain. Rejects ⊤, duplicates,
    /// empty domains and duplicate domain values.
    pub fn add_var(&mut self, var: Var, domain: Vec<u64>) -> Result<()> {
        if var == TOP {
            return Err(Error::UnknownWorld("Var(0) is reserved for ⊤".into()));
        }
        if self.domains.contains_key(&var) {
            return Err(Error::UnknownWorld(format!("{var} already declared")));
        }
        let mut sorted = domain;
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        if sorted.is_empty() || sorted.len() != before {
            return Err(Error::UnknownWorld(format!(
                "domain of {var} must be non-empty and duplicate-free"
            )));
        }
        self.next_var = self.next_var.max(var.0 + 1);
        self.domains.insert(var, sorted);
        Ok(())
    }

    /// Register a fresh variable with domain `0..n` and return it.
    pub fn fresh_var(&mut self, domain_size: u64) -> Result<Var> {
        let v = Var(self.next_var);
        self.add_var(v, (0..domain_size.max(1)).collect())?;
        Ok(v)
    }

    /// Attach a probability distribution to a declared variable. The
    /// probabilities must be non-negative and sum to 1 (±1e-9).
    pub fn set_probabilities(&mut self, var: Var, probs: Vec<f64>) -> Result<()> {
        let dom = self
            .domains
            .get(&var)
            .ok_or_else(|| Error::UnknownWorld(format!("{var} not declared")))?;
        if probs.len() != dom.len() {
            return Err(Error::UnknownWorld(format!(
                "{var}: {} probabilities for {} domain values",
                probs.len(),
                dom.len()
            )));
        }
        let sum: f64 = probs.iter().sum();
        if probs.iter().any(|p| *p < 0.0) || (sum - 1.0).abs() > 1e-9 {
            return Err(Error::UnknownWorld(format!(
                "{var}: probabilities must be non-negative and sum to 1 (got {sum})"
            )));
        }
        self.probs.insert(var, probs);
        Ok(())
    }

    /// `true` once any variable carries probabilities.
    pub fn is_probabilistic(&self) -> bool {
        !self.probs.is_empty()
    }

    /// `P(var ↦ val)`. Variables without explicit probabilities are
    /// uniform over their domain.
    pub fn prob(&self, var: Var, val: u64) -> Result<f64> {
        let dom = self
            .domains
            .get(&var)
            .ok_or_else(|| Error::UnknownWorld(format!("{var} not declared")))?;
        let idx = dom
            .binary_search(&val)
            .map_err(|_| Error::UnknownWorld(format!("{var} ↦ {val} not in domain")))?;
        Ok(match self.probs.get(&var) {
            Some(p) => p[idx],
            None => 1.0 / dom.len() as f64,
        })
    }

    /// The domain of a variable.
    pub fn domain(&self, var: Var) -> Result<&[u64]> {
        self.domains
            .get(&var)
            .map(Vec::as_slice)
            .ok_or_else(|| Error::UnknownWorld(format!("{var} not declared")))
    }

    /// Is `var ↦ val` a row of `W`?
    pub fn contains(&self, var: Var, val: u64) -> bool {
        self.domains
            .get(&var)
            .is_some_and(|d| d.binary_search(&val).is_ok())
    }

    /// All declared variables except ⊤.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.domains.keys().copied().filter(|v| *v != TOP)
    }

    /// Number of declared variables (excluding ⊤).
    pub fn var_count(&self) -> usize {
        self.domains.len() - 1
    }

    /// log₁₀ of the number of possible worlds (Figure 9 reports this as
    /// `10^…`). Zero variables ⇒ one world ⇒ 0.
    pub fn world_count_log10(&self) -> f64 {
        self.vars()
            .map(|v| (self.domains[&v].len() as f64).log10())
            .sum()
    }

    /// Exact world count if it fits in `u128`.
    pub fn world_count_exact(&self) -> Option<u128> {
        let mut n: u128 = 1;
        for v in self.vars() {
            n = n.checked_mul(self.domains[&v].len() as u128)?;
        }
        Some(n)
    }

    /// Largest domain size — the "max. number of local worlds" column of
    /// Figure 9.
    pub fn max_domain_size(&self) -> usize {
        self.vars()
            .map(|v| self.domains[&v].len())
            .max()
            .unwrap_or(1)
    }

    /// Enumerate every total valuation. Errors (rather than looping
    /// forever) when the world-set exceeds `limit`.
    pub fn worlds(&self, limit: usize) -> Result<Vec<Valuation>> {
        let count = self.world_count_exact().unwrap_or(u128::MAX);
        if count > limit as u128 {
            return Err(Error::TooLarge(format!(
                "{count} worlds exceeds enumeration limit {limit}"
            )));
        }
        let vars: Vec<Var> = self.vars().collect();
        let mut out = vec![Valuation::new()];
        for v in vars {
            let dom = &self.domains[&v];
            let mut next = Vec::with_capacity(out.len() * dom.len());
            for w in &out {
                for &val in dom {
                    let mut w2 = w.clone();
                    w2.insert(v, val);
                    next.push(w2);
                }
            }
            out = next;
        }
        Ok(out)
    }

    /// Does the total valuation `f` extend the descriptor `d`
    /// (∀x ∈ dom(d): d(x) = f(x))? ⊤ assignments hold vacuously.
    pub fn extends(&self, f: &Valuation, d: &WsDescriptor) -> bool {
        d.iter()
            .all(|&(v, val)| v == TOP && val == 0 || f.get(&v) == Some(&val))
    }

    /// Probability of one world (product over variables).
    pub fn world_prob(&self, f: &Valuation) -> Result<f64> {
        let mut p = 1.0;
        for (&v, &val) in f {
            p *= self.prob(v, val)?;
        }
        Ok(p)
    }

    /// Check that a descriptor only mentions declared (var, value) pairs —
    /// i.e. its graph is a subset of `W` as Definition 2.2 requires.
    pub fn check_descriptor(&self, d: &WsDescriptor) -> Result<()> {
        for &(v, val) in d.iter() {
            if !self.contains(v, val) {
                return Err(Error::UnknownWorld(format!(
                    "descriptor entry {v} ↦ {val} not in W"
                )));
            }
        }
        Ok(())
    }

    /// Encode as the relational `W(Var, Rng)` table (plus `P` when
    /// probabilistic), exactly as stored in an RDBMS.
    pub fn encode(&self) -> Relation {
        let probabilistic = self.is_probabilistic();
        let names: Vec<&str> = if probabilistic {
            vec!["var", "rng", "p"]
        } else {
            vec!["var", "rng"]
        };
        let mut rows = Vec::new();
        for v in self.vars() {
            for &val in &self.domains[&v] {
                let mut row = vec![Value::Int(v.0 as i64), Value::Int(val as i64)];
                if probabilistic {
                    // Probabilities ride along as micro-units to stay in
                    // the integer value model.
                    let p = self.prob(v, val).unwrap_or(0.0);
                    row.push(Value::Int((p * 1_000_000.0).round() as i64));
                }
                rows.push(row);
            }
        }
        Relation::from_rows(names, rows).expect("well-formed W encoding")
    }

    /// Total size in bytes of the `W` relation (Figure 9 accounting).
    pub fn size_bytes(&self) -> usize {
        self.vars().map(|v| self.domains[&v].len() * 16).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> WorldTable {
        let mut w = WorldTable::new();
        w.add_var(Var(1), vec![1, 2]).unwrap();
        w.add_var(Var(2), vec![1, 2, 3]).unwrap();
        w
    }

    #[test]
    fn counts() {
        let w = table();
        assert_eq!(w.world_count_exact(), Some(6));
        assert_eq!(w.var_count(), 2);
        assert_eq!(w.max_domain_size(), 3);
        assert!((w.world_count_log10() - 6f64.log10()).abs() < 1e-12);
    }

    #[test]
    fn enumeration_is_exhaustive_and_bounded() {
        let w = table();
        let worlds = w.worlds(100).unwrap();
        assert_eq!(worlds.len(), 6);
        // All distinct.
        let mut seen = std::collections::BTreeSet::new();
        for world in &worlds {
            assert!(seen.insert(format!("{world:?}")));
            assert_eq!(world.len(), 2);
        }
        assert!(w.worlds(5).is_err());
    }

    #[test]
    fn reserved_top() {
        let mut w = WorldTable::new();
        assert!(w.add_var(TOP, vec![0]).is_err());
        assert_eq!(w.world_count_exact(), Some(1));
        assert_eq!(w.worlds(10).unwrap().len(), 1);
    }

    #[test]
    fn fresh_vars_monotone() {
        let mut w = table();
        let v = w.fresh_var(4).unwrap();
        assert!(v.0 >= 3);
        assert_eq!(w.domain(v).unwrap().len(), 4);
    }

    #[test]
    fn extends_and_check() {
        let w = table();
        let f: Valuation = [(Var(1), 1), (Var(2), 3)].into_iter().collect();
        assert!(w.extends(&f, &WsDescriptor::empty()));
        assert!(w.extends(&f, &WsDescriptor::singleton(Var(1), 1)));
        assert!(!w.extends(&f, &WsDescriptor::singleton(Var(1), 2)));
        assert!(w
            .check_descriptor(&WsDescriptor::singleton(Var(1), 2))
            .is_ok());
        assert!(w
            .check_descriptor(&WsDescriptor::singleton(Var(9), 0))
            .is_err());
        assert!(w
            .check_descriptor(&WsDescriptor::singleton(Var(1), 7))
            .is_err());
    }

    #[test]
    fn probabilities() {
        let mut w = table();
        // Uniform by default.
        assert!((w.prob(Var(2), 3).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        w.set_probabilities(Var(1), vec![0.3, 0.7]).unwrap();
        assert!((w.prob(Var(1), 2).unwrap() - 0.7).abs() < 1e-12);
        assert!(w.set_probabilities(Var(1), vec![0.5]).is_err());
        assert!(w.set_probabilities(Var(1), vec![0.5, 0.6]).is_err());
        assert!(w.is_probabilistic());
        // World probabilities multiply.
        let f: Valuation = [(Var(1), 2), (Var(2), 1)].into_iter().collect();
        assert!((w.world_prob(&f).unwrap() - 0.7 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn encode_matches_paper_layout() {
        let w = table();
        let rel = w.encode();
        assert_eq!(rel.schema().to_string(), "var, rng");
        assert_eq!(rel.len(), 5);
    }

    #[test]
    fn domain_validation() {
        let mut w = WorldTable::new();
        assert!(w.add_var(Var(1), vec![]).is_err());
        assert!(w.add_var(Var(1), vec![1, 1]).is_err());
        w.add_var(Var(1), vec![2, 1]).unwrap();
        assert_eq!(w.domain(Var(1)).unwrap(), &[1, 2]);
        assert!(w.add_var(Var(1), vec![3]).is_err());
    }
}
