//! World-set descriptors (Section 2).
//!
//! A ws-descriptor is a partial valuation `{x₁ ↦ v₁, …, xₖ ↦ vₖ}` whose
//! graph is a subset of the world table. It denotes the set of worlds
//! (total valuations) extending it. Descriptors are stored as sorted
//! assignment vectors; the relational encoding pads them to a fixed arity
//! by repeating an existing assignment (or ⊤ ↦ 0 when empty), exactly as
//! Definition 2.2 prescribes.

use crate::error::{Error, Result};
use crate::world::{Var, TOP};
use std::fmt;

/// A ws-descriptor: sorted, duplicate-free variable assignments.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WsDescriptor {
    /// Sorted by variable; at most one assignment per variable.
    assignments: Vec<(Var, u64)>,
}

impl WsDescriptor {
    /// The empty descriptor — shorthand for the entire world-set.
    pub fn empty() -> Self {
        WsDescriptor::default()
    }

    /// Single-assignment descriptor.
    pub fn singleton(var: Var, val: u64) -> Self {
        WsDescriptor {
            assignments: vec![(var, val)],
        }
    }

    /// Build from assignment pairs; rejects contradictory duplicates.
    /// Redundant duplicates (same variable, same value) collapse.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Var, u64)>) -> Result<Self> {
        let mut v: Vec<(Var, u64)> = pairs.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        for w in v.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(Error::InconsistentDescriptor(format!(
                    "{} ↦ {} and {} ↦ {}",
                    w[0].0, w[0].1, w[1].0, w[1].1
                )));
            }
        }
        Ok(WsDescriptor { assignments: v })
    }

    /// Number of assignments (the descriptor's *size*; normalization makes
    /// every size ≤ 1).
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// `true` for the empty descriptor.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The value assigned to `var`, if any.
    pub fn get(&self, var: Var) -> Option<u64> {
        self.assignments
            .binary_search_by_key(&var, |&(v, _)| v)
            .ok()
            .map(|i| self.assignments[i].1)
    }

    /// Iterate assignments in variable order.
    pub fn iter(&self) -> std::slice::Iter<'_, (Var, u64)> {
        self.assignments.iter()
    }

    /// The variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.assignments.iter().map(|&(v, _)| v)
    }

    /// Two descriptors are consistent iff no variable gets two different
    /// values — the ψ-condition of Figure 4.
    pub fn consistent_with(&self, other: &WsDescriptor) -> bool {
        // Merge-scan over the sorted assignment lists.
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.assignments, &other.assignments);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if a[i].1 != b[j].1 {
                        return false;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        true
    }

    /// Union of two descriptors (the descriptor of a joined tuple), or
    /// `None` if they are inconsistent.
    pub fn union(&self, other: &WsDescriptor) -> Option<WsDescriptor> {
        if !self.consistent_with(other) {
            return None;
        }
        let mut v = self.assignments.clone();
        v.extend(other.assignments.iter().copied());
        v.sort_unstable();
        v.dedup();
        Some(WsDescriptor { assignments: v })
    }

    /// Does this descriptor *subsume* `other` (every world extending
    /// `other` also extends `self`, i.e. self ⊆ other as assignments)?
    pub fn subsumes(&self, other: &WsDescriptor) -> bool {
        self.assignments
            .iter()
            .all(|&(v, val)| other.get(v) == Some(val) || (v == TOP && val == 0))
    }

    /// The relational encoding: exactly `arity` (Var, Rng) pairs, padding
    /// with a repeated existing assignment, or ⊤ ↦ 0 when empty
    /// (Definition 2.2's padding rule).
    pub fn encode_padded(&self, arity: usize) -> Vec<(Var, u64)> {
        assert!(
            self.assignments.len() <= arity,
            "descriptor of size {} cannot encode at arity {arity}",
            self.assignments.len()
        );
        let mut out = Vec::with_capacity(arity);
        out.extend(self.assignments.iter().copied());
        let pad = self.assignments.first().copied().unwrap_or((TOP, 0));
        while out.len() < arity {
            out.push(pad);
        }
        out
    }

    /// Decode a padded pair list back into a descriptor. Padding
    /// repetitions collapse; ⊤ ↦ 0 entries are dropped; contradictions are
    /// an error (they indicate corrupted data, not an inconsistent join —
    /// joins filter via ψ *before* composing descriptors).
    pub fn decode(pairs: impl IntoIterator<Item = (Var, u64)>) -> Result<Self> {
        WsDescriptor::from_pairs(
            pairs
                .into_iter()
                .filter(|&(v, val)| !(v == TOP && val == 0)),
        )
    }
}

impl fmt::Display for WsDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.assignments.is_empty() {
            return write!(f, "{{}}");
        }
        write!(f, "{{")?;
        for (i, (v, val)) in self.assignments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} ↦ {val}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(pairs: &[(u32, u64)]) -> WsDescriptor {
        WsDescriptor::from_pairs(pairs.iter().map(|&(v, x)| (Var(v), x))).unwrap()
    }

    #[test]
    fn construction_rules() {
        assert!(WsDescriptor::from_pairs([(Var(1), 1), (Var(1), 2)]).is_err());
        // Redundant duplicates collapse.
        assert_eq!(d(&[(1, 1), (1, 1)]).len(), 1);
        assert_eq!(WsDescriptor::empty().len(), 0);
    }

    #[test]
    fn consistency_is_symmetric_and_correct() {
        let a = d(&[(1, 1), (2, 2)]);
        let b = d(&[(2, 2), (3, 1)]);
        let c = d(&[(2, 1)]);
        assert!(a.consistent_with(&b));
        assert!(b.consistent_with(&a));
        assert!(!a.consistent_with(&c));
        assert!(!c.consistent_with(&a));
        assert!(a.consistent_with(&WsDescriptor::empty()));
    }

    #[test]
    fn union_merges_or_fails() {
        let a = d(&[(1, 1)]);
        let b = d(&[(2, 2)]);
        assert_eq!(a.union(&b).unwrap(), d(&[(1, 1), (2, 2)]));
        assert_eq!(a.union(&d(&[(1, 2)])), None);
        assert_eq!(a.union(&a).unwrap(), a);
    }

    #[test]
    fn subsumption() {
        let small = d(&[(1, 1)]);
        let big = d(&[(1, 1), (2, 2)]);
        assert!(small.subsumes(&big));
        assert!(!big.subsumes(&small));
        assert!(WsDescriptor::empty().subsumes(&small));
    }

    #[test]
    fn padding_roundtrip() {
        let a = d(&[(1, 1), (3, 2)]);
        let padded = a.encode_padded(4);
        assert_eq!(padded.len(), 4);
        assert_eq!(padded[2], (Var(1), 1)); // repeated first assignment
        assert_eq!(WsDescriptor::decode(padded).unwrap(), a);

        let empty = WsDescriptor::empty();
        let padded = empty.encode_padded(2);
        assert_eq!(padded, vec![(TOP, 0), (TOP, 0)]);
        assert_eq!(WsDescriptor::decode(padded).unwrap(), empty);
    }

    #[test]
    #[should_panic(expected = "cannot encode")]
    fn padding_checks_arity() {
        d(&[(1, 1), (2, 1)]).encode_padded(1);
    }

    #[test]
    fn decode_rejects_contradictions() {
        assert!(WsDescriptor::decode([(Var(1), 1), (Var(1), 2)]).is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(d(&[(1, 1)]).to_string(), "{x1 ↦ 1}");
        assert_eq!(WsDescriptor::empty().to_string(), "{}");
    }
}
