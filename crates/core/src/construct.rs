//! Constructors for U-relational databases.
//!
//! * [`from_worlds`] — Theorem 2.4: *any* finite set of worlds is
//!   representable (one world-choice variable; tuple-level rows guarded by
//!   `w ↦ i`).
//! * [`or_set_database`] — or-set relations [Imieliński et al. 1991]:
//!   attribute-level independent alternatives per field; linear in
//!   U-relations but exponential in ULDBs (Theorem 5.6).
//! * [`certain_database`] — import an ordinary relational instance as the
//!   trivial one-world U-database.

use crate::descriptor::WsDescriptor;
use crate::error::{Error, Result};
use crate::udb::UDatabase;
use crate::urelation::URelation;
use crate::world::WorldTable;
use std::collections::BTreeMap;
use urel_relalg::{Relation, Value};

/// Theorem 2.4: represent an explicit finite world-set. All worlds must
/// share the given schema. The construction introduces one variable `w`
/// with one domain value per world and guards every tuple of world `i`
/// with `{w ↦ i}`; tuples shared by several worlds get one row per world
/// (compactness is not the point of the completeness theorem).
pub fn from_worlds(rel_name: &str, attrs: &[&str], worlds: &[Relation]) -> Result<UDatabase> {
    if worlds.is_empty() {
        return Err(Error::InvalidQuery("need at least one world".into()));
    }
    for w in worlds {
        if w.schema().arity() != attrs.len() {
            return Err(Error::InvalidQuery("world arity mismatch".into()));
        }
    }
    let mut wt = WorldTable::new();
    let choice = wt.fresh_var(worlds.len() as u64)?;
    let mut db = UDatabase::new(wt);
    db.add_relation(rel_name, attrs.iter().copied())?;

    // Tuple ids: one per distinct tuple across all worlds.
    let mut ids: BTreeMap<Vec<Value>, i64> = BTreeMap::new();
    let mut u = URelation::partition(format!("u_{rel_name}"), attrs.iter().copied());
    for (i, world) in worlds.iter().enumerate() {
        let desc = if worlds.len() == 1 {
            WsDescriptor::empty()
        } else {
            WsDescriptor::singleton(choice, i as u64)
        };
        for row in world.sorted_set().rows() {
            let next = ids.len() as i64 + 1;
            let tid = *ids.entry(row.to_vec()).or_insert(next);
            u.push_simple(desc.clone(), tid, row.to_vec())?;
        }
    }
    db.add_partition(rel_name, u)?;
    db.validate()?;
    Ok(db)
}

/// An or-set relation: every field of every tuple carries a non-empty set
/// of independently-chosen alternatives. Produces one vertical partition
/// per attribute and one fresh variable per multi-alternative field —
/// the linear attribute-level encoding of Theorem 5.6.
pub fn or_set_database(
    rel_name: &str,
    attrs: &[&str],
    rows: &[Vec<Vec<Value>>],
) -> Result<UDatabase> {
    let mut wt = WorldTable::new();
    let mut fields: Vec<(usize, i64, Option<crate::world::Var>)> = Vec::new();
    for (t, row) in rows.iter().enumerate() {
        if row.len() != attrs.len() {
            return Err(Error::InvalidQuery("or-set row arity mismatch".into()));
        }
        for (a, alts) in row.iter().enumerate() {
            if alts.is_empty() {
                return Err(Error::InvalidQuery("empty or-set field".into()));
            }
            let var = if alts.len() > 1 {
                Some(wt.fresh_var(alts.len() as u64)?)
            } else {
                None
            };
            fields.push((a, t as i64 + 1, var));
        }
    }
    let mut db = UDatabase::new(wt);
    db.add_relation(rel_name, attrs.iter().copied())?;
    for (a, attr) in attrs.iter().enumerate() {
        let mut u = URelation::partition(format!("u_{rel_name}_{attr}"), [*attr]);
        for (t, row) in rows.iter().enumerate() {
            let alts = &row[a];
            let var = fields
                .iter()
                .find(|(fa, ft, _)| *fa == a && *ft == t as i64 + 1)
                .and_then(|(_, _, v)| *v);
            match var {
                None => {
                    u.push_simple(WsDescriptor::empty(), t as i64 + 1, vec![alts[0].clone()])?
                }
                Some(v) => {
                    for (i, alt) in alts.iter().enumerate() {
                        u.push_simple(
                            WsDescriptor::singleton(v, i as u64),
                            t as i64 + 1,
                            vec![alt.clone()],
                        )?;
                    }
                }
            }
        }
        db.add_partition(rel_name, u)?;
    }
    db.validate()?;
    Ok(db)
}

/// Import an ordinary (certain) relation as a one-world U-database with
/// one partition per attribute — the `x = 0` baseline of Figure 9.
pub fn certain_database(rel_name: &str, rel: &Relation) -> Result<UDatabase> {
    let attrs: Vec<String> = rel
        .schema()
        .columns()
        .iter()
        .map(|c| c.to_string())
        .collect();
    let mut db = UDatabase::new(WorldTable::new());
    db.add_relation(rel_name, attrs.clone())?;
    for (a, attr) in attrs.iter().enumerate() {
        let mut u = URelation::partition(format!("u_{rel_name}_{attr}"), [attr.clone()]);
        for (t, row) in rel.rows().iter().enumerate() {
            u.push_simple(WsDescriptor::empty(), t as i64 + 1, vec![row[a].clone()])?;
        }
        db.add_partition(rel_name, u)?;
    }
    db.validate()?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{oracle_possible, table};

    fn rel(rows: Vec<Vec<i64>>) -> Relation {
        Relation::from_rows(
            ["a", "b"],
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::Int).collect())
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn theorem_2_4_roundtrip() {
        // Three arbitrary worlds (including an empty one).
        let worlds = vec![
            rel(vec![vec![1, 2], vec![3, 4]]),
            rel(vec![vec![1, 2]]),
            rel(vec![]),
        ];
        let db = from_worlds("r", &["a", "b"], &worlds).unwrap();
        let got = db.possible_worlds(16).unwrap();
        assert_eq!(got.len(), 3);
        let mut got_sets: Vec<String> = got
            .iter()
            .map(|(_, inst)| format!("{}", inst["r"].sorted_set()))
            .collect();
        got_sets.sort();
        let mut want_sets: Vec<String> = worlds
            .iter()
            .map(|w| format!("{}", w.sorted_set()))
            .collect();
        want_sets.sort();
        assert_eq!(got_sets, want_sets);
    }

    #[test]
    fn single_world_is_certain() {
        let db = from_worlds("r", &["a", "b"], &[rel(vec![vec![1, 2]])]).unwrap();
        assert_eq!(db.world.world_count_exact(), Some(1));
    }

    #[test]
    fn or_sets_expand_independently() {
        // 2 alternatives × 3 alternatives = 6 worlds; field 2 certain.
        let db = or_set_database(
            "r",
            &["a", "b"],
            &[vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(10), Value::Int(20), Value::Int(30)],
            ]],
        )
        .unwrap();
        assert_eq!(db.world.world_count_exact(), Some(6));
        let poss = oracle_possible(&table("r"), &db, 16).unwrap();
        assert_eq!(poss.len(), 6);
    }

    #[test]
    fn or_set_size_is_linear() {
        // k attributes × m alternatives: the U-rel encoding has k·m rows
        // (Theorem 5.6's linear side).
        let k = 6;
        let m = 4;
        let row: Vec<Vec<Value>> = (0..k)
            .map(|a| (0..m).map(|i| Value::Int((a * 10 + i) as i64)).collect())
            .collect();
        let attrs: Vec<String> = (0..k).map(|a| format!("c{a}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let db = or_set_database("r", &attr_refs, &[row]).unwrap();
        assert_eq!(db.total_rows(), k * m);
        // …while the world count is m^k.
        assert_eq!(
            db.world.world_count_exact(),
            Some((m as u128).pow(k as u32))
        );
    }

    #[test]
    fn certain_import() {
        let r = rel(vec![vec![1, 2], vec![3, 4]]);
        let db = certain_database("r", &r).unwrap();
        assert_eq!(db.world.world_count_exact(), Some(1));
        let poss = oracle_possible(&table("r"), &db, 4).unwrap();
        assert!(poss.set_eq(&r));
    }

    #[test]
    fn validation_of_inputs() {
        assert!(from_worlds("r", &["a"], &[]).is_err());
        assert!(from_worlds("r", &["a"], &[rel(vec![])]).is_err()); // arity 2 vs 1
        assert!(or_set_database("r", &["a"], &[vec![]]).is_err());
        assert!(or_set_database("r", &["a"], &[vec![vec![]]]).is_err());
    }
}
