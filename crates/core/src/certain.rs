//! Certain answers (Section 4, Lemma 4.3).
//!
//! On tuple-level *normalized* U-relations, a tuple `t` is certain iff
//! some variable `x` witnesses it in every one of its domain values:
//! `∃x ∀l: (x,l) ∈ W ⇒ ∃s: (x↦l, s, t) ∈ U`. The paper encodes this as a
//! relational algebra query —
//!
//! ```text
//! cert(U) := πA( πVar(W) × πA(U)
//!               − πVar,A( W × πA(U) − πVar,Rng,A(U) ) )
//! ```
//!
//! — which this module implements both literally on the relational engine
//! ([`certain_lemma43_relational`]) and directly ([`certain_lemma43`]).
//! [`certain_exact`] computes exact certain answers on *arbitrary* (not
//! necessarily normalized) result U-relations by full world-coverage
//! checking; Lemma 4.3 on the normalized input agrees with it, which the
//! tests verify.

use crate::algebra::UQuery;
use crate::error::{Error, Result};
use crate::prob::covers_all_worlds;
use crate::udb::UDatabase;
use crate::urelation::URelation;
use crate::world::{WorldTable, TOP};
use std::collections::BTreeMap;
use urel_relalg::{exec, Catalog, Expr, Plan, Relation, Schema, Value};

/// Direct implementation of Lemma 4.3 on a tuple-level normalized
/// U-relation. Errors if a descriptor has size > 1.
pub fn certain_lemma43(u: &URelation, w: &WorldTable) -> Result<Relation> {
    let mut witnesses: BTreeMap<Vec<Value>, BTreeMap<crate::world::Var, Vec<u64>>> =
        BTreeMap::new();
    for row in u.rows() {
        if row.desc.len() > 1 {
            return Err(Error::InvalidQuery(
                "Lemma 4.3 requires a normalized U-relation (descriptor size ≤ 1)".into(),
            ));
        }
        let (var, val) = row.desc.iter().next().copied().unwrap_or((TOP, 0));
        witnesses
            .entry(row.vals.to_vec())
            .or_default()
            .entry(var)
            .or_default()
            .push(val);
    }
    let mut out = Relation::empty(Schema::named(u.value_cols()));
    for (tuple, by_var) in witnesses {
        let certain = by_var.iter().any(|(&var, vals)| {
            if var == TOP {
                return true;
            }
            let dom = w.domain(var).map(<[u64]>::len).unwrap_or(usize::MAX);
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            sorted.dedup();
            sorted.len() == dom
        });
        if certain {
            out.push(tuple).expect("arity fixed");
        }
    }
    Ok(out)
}

/// Lemma 4.3 executed as the paper's relational algebra query on the
/// relational engine. `u` must be tuple-level normalized.
pub fn certain_lemma43_relational(u: &URelation, w: &WorldTable) -> Result<Relation> {
    if u.rows().iter().any(|r| r.desc.len() > 1) {
        return Err(Error::InvalidQuery(
            "Lemma 4.3 requires a normalized U-relation (descriptor size ≤ 1)".into(),
        ));
    }
    // Encode U at descriptor arity exactly 1 over [var, rng, A]; the ⊤
    // convention makes empty descriptors the pair (0, 0).
    let mut enc_rows: Vec<Vec<Value>> = Vec::with_capacity(u.len());
    for row in u.rows() {
        let (var, val) = row.desc.iter().next().copied().unwrap_or((TOP, 0));
        let mut r = vec![Value::Int(var.0 as i64), Value::Int(val as i64)];
        r.extend(row.vals.iter().cloned());
        enc_rows.push(r);
    }
    let mut names = vec!["var".to_string(), "rng".to_string()];
    names.extend(u.value_cols().iter().cloned());
    let u_enc = Relation::from_rows(names, enc_rows)?;

    // W including the ⊤ row, so always-present tuples qualify.
    let mut w_rows = vec![vec![Value::Int(0), Value::Int(0)]];
    for v in w.vars() {
        for &val in w.domain(v)? {
            w_rows.push(vec![Value::Int(v.0 as i64), Value::Int(val as i64)]);
        }
    }
    let w_enc = Relation::from_rows(["var", "rng"], w_rows)?;

    let mut catalog = Catalog::new();
    catalog.insert("u", u_enc);
    catalog.insert("wt", w_enc);

    let a: Vec<String> = u.value_cols().to_vec();
    let var_a: Vec<String> = std::iter::once("var".to_string())
        .chain(a.iter().cloned())
        .collect();
    let var_rng_a: Vec<String> = ["var", "rng"]
        .into_iter()
        .map(str::to_string)
        .chain(a.iter().cloned())
        .collect();

    // πVar(W) × πA(U)
    let left = Plan::scan("wt")
        .project_names(["var"])
        .distinct()
        .join(Plan::scan("u").project_names(&a).distinct(), Expr::and([]));
    // W × πA(U) − πVar,Rng,A(U): the (var, rng, tuple) witnesses missing
    // from U.
    let missing = Plan::scan("wt")
        .join(Plan::scan("u").project_names(&a).distinct(), Expr::and([]))
        .difference(Plan::scan("u").project_names(&var_rng_a));
    // πVar,A of the missing set: variables that fail to witness a tuple.
    let failed = missing.project_names(&var_a);
    // Subtract and project to A.
    let cert = left
        .project_names(&var_a)
        .difference(failed)
        .project_names(&a)
        .distinct();
    // The plan tops out in Distinct, so the Arc is freshly built and
    // unwrapping it is free.
    Ok(std::sync::Arc::unwrap_or_clone(exec::execute(
        &cert, &catalog,
    )?))
}

/// Exact certain answers of an arbitrary result U-relation: a tuple is
/// certain iff the union of its rows' descriptors covers every world.
pub fn certain_exact(u: &URelation, w: &WorldTable) -> Result<Relation> {
    let mut groups: BTreeMap<Vec<Value>, Vec<crate::descriptor::WsDescriptor>> = BTreeMap::new();
    for row in u.rows() {
        groups
            .entry(row.vals.to_vec())
            .or_default()
            .push(row.desc.clone());
    }
    let mut out = Relation::empty(Schema::named(u.value_cols()));
    for (tuple, descs) in groups {
        if covers_all_worlds(&descs, w)? {
            out.push(tuple).expect("arity fixed");
        }
    }
    Ok(out)
}

/// World-count ceiling for the exact-expansion fallback taken by
/// [`certain_answers`] on databases with partial or-set fields.
pub const CERTAIN_EXPANSION_CAP: usize = 4096;

/// End-to-end certain answers of a logical query: evaluate the translated
/// query, normalize the result (Algorithm 1), and apply Lemma 4.3.
///
/// Lemma 4.3 is only sound over databases satisfying Proposition 3.3's
/// reduction guarantee — every tuple present in a world has all of its
/// fields defined there. A *partial* or-set field (defined in only some
/// worlds) breaks that guarantee and would make this path
/// over-approximate, so such databases are detected up front
/// ([`UDatabase::has_partial_fields`]) and answered by exact world
/// expansion instead, up to [`CERTAIN_EXPANSION_CAP`] worlds; above the
/// cap this returns [`Error::TooLarge`] rather than a wrong answer.
pub fn certain_answers(udb: &UDatabase, q: &UQuery) -> Result<Relation> {
    crate::translate::PreparedDb::new(udb).certain(q)
}

/// Certain answers of a result U-relation under an explicit coverage
/// computation method, with each reported tuple's coverage probability.
///
/// The *exact* method reproduces [`certain_exact`]: a tuple is reported
/// iff its descriptors' union covers every world (coverage 1, decided
/// combinatorially, so no float threshold is involved). The
/// *Monte-Carlo* method estimates each tuple's coverage probability by
/// world sampling and reports tuples whose estimate is at least
/// `1 − ε(δ)`, the Hoeffding half-width of
/// [`crate::prob::ConfidenceMethod::error_bound`]: every truly certain
/// tuple passes with probability `≥ 1 − δ`, and a tuple with true
/// coverage below `1 − 2ε` is excluded with the same confidence —
/// tuples inside the `2ε` gap are inherently at the estimator's mercy,
/// which is the usual Monte-Carlo trade.
pub fn certain_with_coverage(
    u: &URelation,
    w: &WorldTable,
    method: crate::prob::ConfidenceMethod,
    delta: f64,
) -> Result<Vec<(Vec<Value>, f64)>> {
    let mut groups: BTreeMap<Vec<Value>, Vec<crate::descriptor::WsDescriptor>> = BTreeMap::new();
    for row in u.rows() {
        groups
            .entry(row.vals.to_vec())
            .or_default()
            .push(row.desc.clone());
    }
    let mut out = Vec::new();
    for (tuple, descs) in groups {
        match method {
            crate::prob::ConfidenceMethod::Exact => {
                if covers_all_worlds(&descs, w)? {
                    out.push((tuple, 1.0));
                }
            }
            crate::prob::ConfidenceMethod::MonteCarlo { .. } => {
                let coverage = crate::prob::coverage_probability(&descs, w, method)?;
                if coverage >= 1.0 - method.error_bound(delta) {
                    out.push((tuple, coverage));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{oracle_certain, table};
    use crate::descriptor::WsDescriptor;
    use crate::normalize::normalize_urelations;
    use crate::translate::evaluate;
    use crate::udb::figure1_database;
    use crate::world::Var;
    use urel_relalg::{col, lit_str};

    fn w2() -> WorldTable {
        let mut w = WorldTable::new();
        w.add_var(Var(1), vec![0, 1]).unwrap();
        w.add_var(Var(2), vec![0, 1, 2]).unwrap();
        w
    }

    fn normalized_sample() -> URelation {
        let mut u = URelation::partition("u", ["a"]);
        // "always" appears under every value of x1.
        u.push_simple(
            WsDescriptor::singleton(Var(1), 0),
            1,
            vec![Value::str("always")],
        )
        .unwrap();
        u.push_simple(
            WsDescriptor::singleton(Var(1), 1),
            1,
            vec![Value::str("always")],
        )
        .unwrap();
        // "sometimes" appears only under x2 ↦ 0.
        u.push_simple(
            WsDescriptor::singleton(Var(2), 0),
            2,
            vec![Value::str("sometimes")],
        )
        .unwrap();
        // "top" has an empty descriptor: present everywhere.
        u.push_simple(WsDescriptor::empty(), 3, vec![Value::str("top")])
            .unwrap();
        u
    }

    #[test]
    fn direct_lemma_4_3() {
        let w = w2();
        let cert = certain_lemma43(&normalized_sample(), &w).unwrap();
        let expect = Relation::from_rows(
            ["a"],
            vec![vec![Value::str("always")], vec![Value::str("top")]],
        )
        .unwrap();
        assert!(cert.set_eq(&expect), "{cert}");
    }

    #[test]
    fn relational_and_direct_agree() {
        let w = w2();
        let u = normalized_sample();
        let direct = certain_lemma43(&u, &w).unwrap();
        let relational = certain_lemma43_relational(&u, &w).unwrap();
        assert!(direct.set_eq(&relational), "{direct} vs {relational}");
    }

    #[test]
    fn lemma_rejects_unnormalized() {
        let w = w2();
        let mut u = URelation::partition("u", ["a"]);
        u.push_simple(
            WsDescriptor::from_pairs([(Var(1), 0), (Var(2), 0)]).unwrap(),
            1,
            vec![Value::Int(1)],
        )
        .unwrap();
        assert!(certain_lemma43(&u, &w).is_err());
        assert!(certain_lemma43_relational(&u, &w).is_err());
    }

    #[test]
    fn exact_handles_cross_variable_coverage() {
        // "v" is present under x1↦0, and under x1↦1 for both values of x2…
        // …which covers everything, but no single variable witnesses it.
        let mut w = WorldTable::new();
        w.add_var(Var(1), vec![0, 1]).unwrap();
        w.add_var(Var(2), vec![0, 1]).unwrap();
        let mut u = URelation::partition("u", ["a"]);
        let d = |pairs: &[(u32, u64)]| {
            WsDescriptor::from_pairs(pairs.iter().map(|&(v, x)| (Var(v), x))).unwrap()
        };
        u.push_simple(d(&[(1, 0)]), 1, vec![Value::str("v")])
            .unwrap();
        u.push_simple(d(&[(1, 1), (2, 0)]), 1, vec![Value::str("v")])
            .unwrap();
        u.push_simple(d(&[(1, 1), (2, 1)]), 1, vec![Value::str("v")])
            .unwrap();
        let cert = certain_exact(&u, &w).unwrap();
        assert_eq!(cert.len(), 1);
        // Lemma 4.3 on the *normalized* form agrees: normalization fuses
        // x1 and x2 into one variable witnessing all four values.
        let n = normalize_urelations(&[&u], &w).unwrap();
        let via_lemma = certain_lemma43(&n.relations[0], &n.world).unwrap();
        assert!(via_lemma.set_eq(&cert));
    }

    #[test]
    fn end_to_end_certain_answers_match_oracle() {
        let db = figure1_database();
        // Faction of vehicle 1 is certainly Friend; query certain factions.
        let q = table("r").project(["faction"]);
        let got = certain_answers(&db, &q).unwrap();
        let want = oracle_certain(&q, &db, 64).unwrap();
        assert!(got.set_eq(&want), "{got} vs {want}");

        // Certain enemy-tank ids: none.
        let q = table("r")
            .select(Expr::and([
                col("type").eq(lit_str("Tank")),
                col("faction").eq(lit_str("Enemy")),
            ]))
            .project(["id"]);
        let got = certain_answers(&db, &q).unwrap();
        assert!(got.is_empty());

        // Certain ids: all four vehicles exist in every world.
        let q = table("r").project(["id"]);
        let got = certain_answers(&db, &q).unwrap();
        let want = oracle_certain(&q, &db, 64).unwrap();
        assert!(got.set_eq(&want));
        assert_eq!(got.len(), 4);
    }

    /// `r[a, b]` where tuple 1's `a` is certain but `b` is a partial
    /// or-set: defined under x1 ↦ 0 and x1 ↦ 1, undefined under x1 ↦ 2.
    fn partial_db() -> UDatabase {
        let mut w = WorldTable::new();
        w.add_var(Var(1), vec![0, 1, 2]).unwrap();
        let mut db = UDatabase::new(w);
        db.add_relation("r", ["a", "b"]).unwrap();
        let mut ua = URelation::partition("u_a", ["a"]);
        ua.push_simple(WsDescriptor::empty(), 1, vec![Value::Int(7)])
            .unwrap();
        db.add_partition("r", ua).unwrap();
        let mut ub = URelation::partition("u_b", ["b"]);
        for l in [0, 1] {
            ub.push_simple(WsDescriptor::singleton(Var(1), l), 1, vec![Value::Int(0)])
                .unwrap();
        }
        db.add_partition("r", ub).unwrap();
        db.validate().unwrap();
        // Already reduced: every row completes in some world. The
        // partiality survives reduction — that is the whole problem.
        assert!(crate::reduce::is_reduced(&db).unwrap());
        db
    }

    #[test]
    fn partial_or_set_fields_take_the_exact_expansion_path() {
        let db = partial_db();
        assert!(db.has_partial_fields().unwrap());
        assert!(!figure1_database().has_partial_fields().unwrap());
        // In world x1 ↦ 2 tuple 1 has no `b` field and drops out, so its
        // `a` value is possible but not certain. The pruned translation
        // reads only `u_a` for this projection and would report {7}.
        let q = table("r").project(["a"]);
        let got = certain_answers(&db, &q).unwrap();
        assert!(got.is_empty(), "{got}");
        let want = oracle_certain(&q, &db, 64).unwrap();
        assert!(got.set_eq(&want), "{got} vs {want}");
    }

    #[test]
    fn partial_fields_above_the_expansion_cap_error_clearly() {
        let mut db = partial_db();
        // Pad the world table past the cap: 12 extra binary variables
        // make 3 · 2¹² = 12288 > 4096 worlds.
        for i in 0..12 {
            db.world.add_var(Var(100 + i), vec![0, 1]).unwrap();
        }
        let err = certain_answers(&db, &table("r")).unwrap_err();
        assert!(matches!(err, Error::TooLarge(_)), "{err}");
        assert!(err.to_string().contains("partial or-set"), "{err}");
    }

    /// The cap is inclusive and exact: a world table of *exactly*
    /// [`CERTAIN_EXPANSION_CAP`] worlds expands, one more world errors
    /// cleanly.
    #[test]
    fn expansion_cap_boundary_is_exact() {
        // `b` is partial (defined only under x1 ↦ 0), so certain_answers
        // must take the expansion path.
        let partial_over = |world: WorldTable| {
            let mut db = UDatabase::new(world);
            db.add_relation("r", ["a", "b"]).unwrap();
            let mut ua = URelation::partition("u_a", ["a"]);
            ua.push_simple(WsDescriptor::empty(), 1, vec![Value::Int(7)])
                .unwrap();
            db.add_partition("r", ua).unwrap();
            let mut ub = URelation::partition("u_b", ["b"]);
            ub.push_simple(WsDescriptor::singleton(Var(1), 0), 1, vec![Value::Int(0)])
                .unwrap();
            db.add_partition("r", ub).unwrap();
            db.validate().unwrap();
            assert!(db.has_partial_fields().unwrap());
            db
        };

        // Exactly 4096 = 2¹² worlds: 12 binary variables.
        let mut w = WorldTable::new();
        for i in 0..12u32 {
            w.add_var(Var(1 + i), vec![0, 1]).unwrap();
        }
        let db = partial_over(w);
        assert_eq!(
            db.world.world_count_exact(),
            Some(CERTAIN_EXPANSION_CAP as u128)
        );
        // At the cap the expansion runs: in worlds with x1 ↦ 1 tuple 1
        // loses its `b` field, so nothing is certain.
        let got = certain_answers(&db, &table("r").project(["a"])).unwrap();
        assert!(got.is_empty(), "{got}");

        // Exactly 4097 = 17 · 241 worlds: one world over the cap errors
        // cleanly — TooLarge, never a panic or a wrong answer.
        let mut w = WorldTable::new();
        w.add_var(Var(1), (0..17).collect()).unwrap();
        w.add_var(Var(2), (0..241).collect()).unwrap();
        let db = partial_over(w);
        assert_eq!(
            db.world.world_count_exact(),
            Some(CERTAIN_EXPANSION_CAP as u128 + 1)
        );
        let err = certain_answers(&db, &table("r").project(["a"])).unwrap_err();
        assert!(matches!(err, Error::TooLarge(_)), "{err}");
    }

    #[test]
    fn exact_matches_oracle_on_figure1() {
        let db = figure1_database();
        let q = table("r").project(["id", "faction"]);
        let u = evaluate(&db, &q).unwrap();
        let got = certain_exact(&u, &db.world).unwrap();
        let want = oracle_certain(&q, &db, 64).unwrap();
        assert!(got.set_eq(&want), "{got} vs {want}");
    }
}
