//! The `[[·]]` translation (Figure 4): positive relational algebra with
//! `poss` and `merge` over the logical schema, compiled into *plain
//! relational algebra* over the relational encodings of the U-relations.
//!
//! Shape of the translation (the paper's parsimony claim, verified in
//! tests): a selection becomes a selection, a projection a projection, a
//! join a join whose condition additionally carries
//!
//! * `α` — equality of shared tuple-id columns (merge only), and
//! * `ψ` — descriptor consistency:
//!   `⋀_{D'∈U1.D, D''∈U2.D} (D'.Var ≠ D''.Var ∨ D'.Rng = D''.Rng)`,
//!
//! and `poss` becomes a (duplicate-eliminating) projection onto the value
//! columns. The translation of a `Table` leaf merges exactly the vertical
//! partitions needed for the attributes the query context requires
//! (late materialization); [`TranslateOptions::prune_partitions`] can turn
//! that off to reproduce the naive plan P1 of Figure 3.

use crate::algebra::UQuery;
use crate::error::{Error, Result};
use crate::udb::UDatabase;
use crate::urelation::URelation;
use std::collections::BTreeSet;
use urel_relalg::{exec, optimizer, Catalog, ColRef, Expr, Plan, Relation};

/// A translated query: a relational plan plus the bookkeeping that says
/// which output columns encode descriptors, tuple ids and values.
#[derive(Clone, Debug)]
pub struct TPlan {
    /// Relational algebra plan over the encoded partitions and `W`.
    pub plan: Plan,
    /// Descriptor column pairs `(Var column, Rng column)`.
    pub desc_cols: Vec<(ColRef, ColRef)>,
    /// Tuple-id columns with their logical source key (relation or alias);
    /// merge joins on matching keys (the `α` condition).
    pub tid_cols: Vec<(String, ColRef)>,
    /// Value columns under their logical attribute identity.
    pub value_cols: Vec<ColRef>,
}

impl TPlan {
    /// Arity of the descriptor encoding.
    pub fn desc_arity(&self) -> usize {
        self.desc_cols.len()
    }
}

/// Knobs for the translation, used by the plan-ablation experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TranslateOptions {
    /// Merge only the partitions needed by the query context (late
    /// materialization). `false` reproduces the naive plan that first
    /// reconstructs every relation completely (P1 in Figure 3).
    pub prune_partitions: bool,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        TranslateOptions {
            prune_partitions: true,
        }
    }
}

/// Translate a logical query (Figure 4) with default options.
pub fn translate(udb: &UDatabase, q: &UQuery) -> Result<TPlan> {
    translate_with(udb, q, TranslateOptions::default())
}

/// Translate with explicit options.
pub fn translate_with(udb: &UDatabase, q: &UQuery, opts: TranslateOptions) -> Result<TPlan> {
    let mut tr = Translator { udb, next: 0, opts };
    let t = tr.query(q, None)?;
    Ok(canonicalize(t))
}

/// Translate, optimize, execute, and decode the result U-relation.
pub fn evaluate(udb: &UDatabase, q: &UQuery) -> Result<URelation> {
    evaluate_with(udb, q, TranslateOptions::default(), true)
}

/// Evaluation with explicit translation options and an optimizer toggle
/// (for the plan-ablation benchmarks).
pub fn evaluate_with(
    udb: &UDatabase,
    q: &UQuery,
    opts: TranslateOptions,
    optimize: bool,
) -> Result<URelation> {
    PreparedDb::new(udb).evaluate_with(q, opts, optimize)
}

/// Evaluate `poss(Q)` (wrapping `Q` if needed): the set of possible
/// answer tuples, as a plain relation.
pub fn possible(udb: &UDatabase, q: &UQuery) -> Result<Relation> {
    PreparedDb::new(udb).possible(q)
}

/// Evaluate `poss(Q)` and attach a confidence to every answer tuple,
/// computed exactly or by seeded Monte-Carlo estimation (the Section 7
/// estimator, wired into the `possible` entry point for instances where
/// exact variable elimination is too expensive).
pub fn possible_with_confidence(
    udb: &UDatabase,
    q: &UQuery,
    method: crate::prob::ConfidenceMethod,
) -> Result<Vec<(Vec<urel_relalg::Value>, f64)>> {
    PreparedDb::new(udb).possible_with_confidence(q, method)
}

/// Evaluate the certain answers of `Q` with a coverage probability per
/// tuple, computed exactly (full world-coverage checking) or by seeded
/// Monte-Carlo estimation with Hoeffding bounds — the `certain` twin of
/// [`possible_with_confidence`] (see
/// [`crate::certain::certain_with_coverage`] for the exact contract).
pub fn certain_with_confidence(
    udb: &UDatabase,
    q: &UQuery,
    method: crate::prob::ConfidenceMethod,
) -> Result<Vec<(Vec<urel_relalg::Value>, f64)>> {
    PreparedDb::new(udb).certain_with_confidence(q, method)
}

/// A U-relational database registered once in an engine catalog, for
/// running many queries without re-encoding the representation per query.
///
/// The catalog stores `Arc<Relation>`s and scans alias them, so repeated
/// queries through a `PreparedDb` share one copy of the base data — the
/// per-query cost is translation, optimization, and the result rows, not
/// the database. Registration also computes statistics over each
/// relation's columnar image, which builds and caches that image: the
/// engine's vectorized batch pipelines scan encoded partitions
/// column-major from the first query on, paying row-to-column conversion
/// once per `PreparedDb`, not once per query. A *plan cache* completes
/// the prepared-statement picture: each distinct (query, options) pair
/// is translated and optimized once, and re-running it executes the
/// cached physical plan directly — on the Figure 12 workload that halves
/// steady-state query latency, since translation + optimization cost as
/// much as execution at these scales. The cache is sound because the
/// database is immutably borrowed for the `PreparedDb`'s lifetime. The
/// free functions [`evaluate`] / [`possible`] remain one-shot
/// conveniences that prepare internally.
pub struct PreparedDb<'a> {
    udb: &'a UDatabase,
    catalog: Catalog,
    /// Prepared-statement cache: `(query, options, optimized)` →
    /// translated (+ optimized) plan and decode bookkeeping. A `Mutex`
    /// (not `RefCell`) keeps `PreparedDb: Sync`; contention is per
    /// query, never per row.
    plans: std::sync::Mutex<Vec<PlanCacheEntry>>,
}

/// One prepared-statement cache slot: the statement key (query, options,
/// optimizer toggle) and its physical plan.
type PlanCacheEntry = (UQuery, TranslateOptions, bool, std::sync::Arc<CachedPlan>);

/// A cached physical plan with the decode info `evaluate` needs.
struct CachedPlan {
    plan: Plan,
    desc_arity: usize,
    tid_count: usize,
}

/// Cached plans per `PreparedDb` before the cache resets (a safety
/// bound; real workloads run a handful of distinct statements).
const PLAN_CACHE_CAP: usize = 64;

impl<'a> PreparedDb<'a> {
    /// Encode every partition plus `W` into a fresh catalog, once
    /// (statistics and cached columnar images included).
    pub fn new(udb: &'a UDatabase) -> Self {
        PreparedDb {
            udb,
            catalog: udb.to_catalog(),
            plans: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Build a `PreparedDb` over an *already prepared* catalog instead
    /// of encoding the database again. `Catalog` clones alias their
    /// `Arc<Relation>` storage and `Arc<TableStats>` statistics, so a
    /// server can encode the database once and hand every session its
    /// own cheap catalog copy — sessions share the base data and
    /// statistics but keep independent plan caches and execution knobs
    /// (threads, memory budget, deadline). The caller is responsible
    /// for `catalog` actually encoding `udb` (i.e. it descends from
    /// [`UDatabase::to_catalog`]).
    pub fn with_catalog(udb: &'a UDatabase, catalog: Catalog) -> Self {
        PreparedDb {
            udb,
            catalog,
            plans: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// The underlying database.
    pub fn udb(&self) -> &'a UDatabase {
        self.udb
    }

    /// The prepared catalog (shared base relations + statistics).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Cap the morsel-driven executor's parallel workers for queries run
    /// through this `PreparedDb` (1 = serial; the default comes from
    /// `RELALG_THREADS` / the machine's available parallelism). Cached
    /// plans stay valid — the thread count is an execution knob, not a
    /// plan property.
    pub fn set_threads(&mut self, threads: usize) {
        self.catalog.set_threads(threads);
    }

    /// Cap the bytes pipeline-breaker buffers may hold for queries run
    /// through this `PreparedDb` (`usize::MAX` or `0` = unbounded; the
    /// default comes from `RELALG_MEM_BUDGET`). Over-budget breakers
    /// spill to sorted runs in a scoped temp directory — answers are
    /// byte-identical to unbounded execution, and cached plans stay
    /// valid: like the thread cap, the budget is an execution knob, not
    /// a plan property.
    pub fn set_mem_budget(&mut self, bytes: usize) {
        self.catalog.set_mem_budget(bytes);
    }

    /// Select the base-table storage mode for queries run through this
    /// `PreparedDb` (plain columnar, compressed segments, a paged
    /// segment cache, or the on-disk segment store; the default comes
    /// from `RELALG_STORAGE`). Answers are byte-identical across modes;
    /// cached plans stay valid — storage is an execution knob, not a
    /// plan property.
    pub fn set_storage(&mut self, mode: urel_relalg::StorageMode) {
        self.catalog.set_storage(mode);
    }

    /// Cap the decoded segments the disk-mode buffer pool shared across
    /// relations keeps resident for queries run through this
    /// `PreparedDb` (floored at 1; the default comes from
    /// `RELALG_BUFFER_POOL`). Only observable under
    /// [`urel_relalg::StorageMode::Disk`].
    pub fn set_buffer_pool(&mut self, segments: usize) {
        self.catalog.set_buffer_pool(segments);
    }

    /// Set (or clear) the per-query deadline for queries run through
    /// this `PreparedDb`. An execution past the deadline stops at the
    /// next batch/morsel boundary, releases every resource it holds,
    /// and returns `urel_relalg::Error::Cancelled`. Like the other
    /// knobs this is an execution property, not a plan property —
    /// cached plans stay valid across deadline changes, which is what
    /// lets a server re-arm the deadline per request.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Duration>) {
        self.catalog.set_deadline(deadline);
    }

    /// Number of physical plans currently held by the prepared-statement
    /// cache (observability hook; also used by tests to pin the cache's
    /// hit behavior).
    pub fn cached_plan_count(&self) -> usize {
        self.plans.lock().expect("plan cache poisoned").len()
    }

    /// Translate, optimize, execute, and decode the result U-relation.
    pub fn evaluate(&self, q: &UQuery) -> Result<URelation> {
        self.evaluate_with(q, TranslateOptions::default(), true)
    }

    /// Evaluation with explicit translation options and an optimizer
    /// toggle (for the plan-ablation benchmarks). Plans come from the
    /// prepared-statement cache when the same (query, options) pair ran
    /// before.
    pub fn evaluate_with(
        &self,
        q: &UQuery,
        opts: TranslateOptions,
        optimize: bool,
    ) -> Result<URelation> {
        let entry = self.plan_for(q, opts, optimize)?;
        let rel = exec::execute(&entry.plan, &self.catalog)?;
        URelation::decode("result", &rel, entry.desc_arity, entry.tid_count)
    }

    /// Look up (or translate, optimize, and insert) the physical plan
    /// for a statement.
    fn plan_for(
        &self,
        q: &UQuery,
        opts: TranslateOptions,
        optimize: bool,
    ) -> Result<std::sync::Arc<CachedPlan>> {
        {
            let plans = self.plans.lock().expect("plan cache poisoned");
            if let Some((_, _, _, e)) = plans
                .iter()
                .find(|(cq, co, copt, _)| cq == q && *co == opts && *copt == optimize)
            {
                return Ok(std::sync::Arc::clone(e));
            }
        }
        let t = translate_with(self.udb, q, opts)?;
        let plan = if optimize {
            optimizer::optimize(&t.plan, &self.catalog)?
        } else {
            t.plan.clone()
        };
        let entry = std::sync::Arc::new(CachedPlan {
            plan,
            desc_arity: t.desc_arity(),
            tid_count: t.tid_cols.len(),
        });
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        if plans.len() >= PLAN_CACHE_CAP {
            plans.clear();
        }
        plans.push((q.clone(), opts, optimize, std::sync::Arc::clone(&entry)));
        Ok(entry)
    }

    /// Evaluate `poss(Q)` (wrapping `Q` if needed): the set of possible
    /// answer tuples, as a plain relation.
    pub fn possible(&self, q: &UQuery) -> Result<Relation> {
        Ok(self.possible_with_stats(q)?.0)
    }

    /// [`PreparedDb::possible`] plus the [`urel_relalg::ExecStats`] of
    /// the physical execution — the serving layer reports these per
    /// request (batches, workers, spills, pool traffic, cancellation).
    pub fn possible_with_stats(&self, q: &UQuery) -> Result<(Relation, urel_relalg::ExecStats)> {
        let wrapped = match q {
            UQuery::Poss { .. } => q.clone(),
            _ => q.clone().poss(),
        };
        let entry = self.plan_for(&wrapped, TranslateOptions::default(), true)?;
        let (rel, stats) = exec::execute_with_stats(&entry.plan, &self.catalog)?;
        let u = URelation::decode("result", &rel, entry.desc_arity, entry.tid_count)?;
        Ok((u.possible_tuples(), stats))
    }

    /// Render the optimized physical plan for `poss(Q)` (wrapping `Q`
    /// if needed) without executing it — the `EXPLAIN` passthrough of
    /// the query surface. Goes through the same plan cache as
    /// [`PreparedDb::possible`], so explaining then executing a
    /// statement translates and optimizes it once.
    pub fn explain(&self, q: &UQuery) -> Result<String> {
        let wrapped = match q {
            UQuery::Poss { .. } => q.clone(),
            _ => q.clone().poss(),
        };
        let entry = self.plan_for(&wrapped, TranslateOptions::default(), true)?;
        Ok(urel_relalg::explain::explain(&entry.plan, &self.catalog))
    }

    /// Certain answers of `Q` through the prepared-statement plan cache
    /// (the serving path for the query surface's `certain` clause):
    /// evaluate the translated query, normalize (Algorithm 1), and
    /// apply Lemma 4.3 — with the partial-or-set-field detection and
    /// exact world-expansion fallback of
    /// [`crate::certain::certain_answers`], which this supersedes for
    /// repeated statements (the translated plan is cached; the
    /// normalization and Lemma 4.3 passes run per call on the result).
    pub fn certain(&self, q: &UQuery) -> Result<Relation> {
        if self.udb.has_partial_fields()? {
            let cap = crate::certain::CERTAIN_EXPANSION_CAP;
            let (_possible, certain) =
                crate::worldops::expand_answers(self.udb, q, cap).map_err(|e| match e {
                    Error::TooLarge(msg) => Error::TooLarge(format!(
                        "`certain` on a database with partial or-set fields needs exact world \
                         expansion: {msg}"
                    )),
                    other => other,
                })?;
            return Ok(certain);
        }
        // NB: `q` is evaluated exactly as written — an explicit
        // `poss(Q)` wrapper projects descriptors away, making the
        // result deterministic, so its certain answers are the
        // possible answers (the world-expansion oracle pins this).
        let u = self.evaluate(q)?;
        let normalized = crate::normalize::normalize_urelations(&[&u], &self.udb.world)?;
        crate::certain::certain_lemma43(&normalized.relations[0], &normalized.world)
    }

    /// Evaluate `poss(Q)` with a confidence per answer tuple. The query
    /// is evaluated *without* the final `poss` projection (confidence
    /// needs the result descriptors), then each distinct value tuple
    /// gets the union probability of its descriptors, exact or
    /// Monte-Carlo estimated per `method`.
    pub fn possible_with_confidence(
        &self,
        q: &UQuery,
        method: crate::prob::ConfidenceMethod,
    ) -> Result<Vec<(Vec<urel_relalg::Value>, f64)>> {
        let inner: &UQuery = match q {
            UQuery::Poss { input } => input,
            _ => q,
        };
        let u = self.evaluate(inner)?;
        crate::prob::tuple_confidences_with(&u, &self.udb.world, method)
    }

    /// Certain answers with a coverage probability per tuple: evaluated
    /// without the final `poss` projection (coverage needs the result
    /// descriptors), then each distinct value tuple's descriptor union
    /// is checked for full world coverage — combinatorially for
    /// [`crate::prob::ConfidenceMethod::Exact`], by world sampling
    /// within the Hoeffding half-width `ε(10⁻⁶)` for the Monte-Carlo
    /// estimator.
    pub fn certain_with_confidence(
        &self,
        q: &UQuery,
        method: crate::prob::ConfidenceMethod,
    ) -> Result<Vec<(Vec<urel_relalg::Value>, f64)>> {
        const DELTA: f64 = 1e-6;
        let inner: &UQuery = match q {
            UQuery::Poss { input } => input,
            _ => q,
        };
        let u = self.evaluate(inner)?;
        crate::certain::certain_with_coverage(&u, &self.udb.world, method, DELTA)
    }
}

struct Translator<'a> {
    udb: &'a UDatabase,
    next: usize,
    opts: TranslateOptions,
}

impl<'a> Translator<'a> {
    fn fresh(&mut self) -> usize {
        self.next += 1;
        self.next
    }

    /// `needed = None` means "all output attributes are required".
    fn query(&mut self, q: &UQuery, needed: Option<&BTreeSet<ColRef>>) -> Result<TPlan> {
        match q {
            UQuery::Table { rel, alias } => self.table(rel, alias.as_deref(), needed),
            UQuery::Select { input, pred } => {
                // needed' = needed ∪ columns(pred)
                let inner_needed = needed.map(|n| {
                    let mut n2 = n.clone();
                    n2.extend(pred.columns());
                    n2
                });
                let t = self.query(input, inner_needed.as_ref())?;
                Ok(TPlan {
                    plan: t.plan.select(pred.clone()),
                    ..t
                })
            }
            UQuery::Project { input, attrs: _ } => {
                let out_attrs = q.attrs(self.udb)?;
                let inner_needed: BTreeSet<ColRef> = out_attrs.iter().cloned().collect();
                let t = self.query(input, Some(&inner_needed))?;
                self.project(t, &out_attrs)
            }
            UQuery::Join { left, right, pred } => {
                let l_attrs = left.attrs(self.udb)?;
                let r_attrs = right.attrs(self.udb)?;
                let inner = |attrs: &[ColRef]| -> Option<BTreeSet<ColRef>> {
                    needed.map(|n| {
                        n.iter()
                            .cloned()
                            .chain(pred.columns())
                            .filter(|r| attrs.iter().any(|a| a.matches(r)))
                            .collect()
                    })
                };
                let lt = self.query(left, inner(&l_attrs).as_ref())?;
                let rt = self.query(right, inner(&r_attrs).as_ref())?;
                self.join(lt, rt, pred.clone())
            }
            UQuery::Union { left, right } => {
                // Needs transfer by attribute *name*; strip qualifiers so
                // they match the right side's (possibly different) aliases.
                let rneeded =
                    needed.map(|n| n.iter().map(|c| c.unqualified()).collect::<BTreeSet<_>>());
                let lt = self.query(left, needed)?;
                let rt = self.query(right, rneeded.as_ref())?;
                self.union(lt, rt)
            }
            UQuery::Poss { input } => {
                let all = input.attrs(self.udb)?;
                let keep: Vec<ColRef> = match needed {
                    Some(n) => all
                        .iter()
                        .filter(|a| n.iter().any(|r| a.matches(r)))
                        .cloned()
                        .collect(),
                    None => all.clone(),
                };
                let inner_needed: BTreeSet<ColRef> = keep.iter().cloned().collect();
                let t = self.query(input, Some(&inner_needed))?;
                // [[poss(Q)]] := π_A(U) — plus duplicate elimination to
                // return a set.
                let cols: Vec<(Expr, ColRef)> = keep
                    .iter()
                    .map(|a| {
                        let c = t
                            .value_cols
                            .iter()
                            .find(|v| *v == a)
                            .ok_or_else(|| {
                                Error::InvalidQuery(format!("poss: attribute `{a}` missing"))
                            })?
                            .clone();
                        Ok((Expr::Col(c.clone()), c))
                    })
                    .collect::<Result<_>>()?;
                Ok(TPlan {
                    plan: t.plan.project(cols).distinct(),
                    desc_cols: Vec::new(),
                    tid_cols: Vec::new(),
                    value_cols: keep,
                })
            }
        }
    }

    /// Translate a `Table` leaf: pick the partitions covering the needed
    /// attributes and fold them with `merge`.
    fn table(
        &mut self,
        rel: &str,
        alias: Option<&str>,
        needed: Option<&BTreeSet<ColRef>>,
    ) -> Result<TPlan> {
        let attrs = self.udb.attrs(rel)?.to_vec();
        let mk = |a: &str| -> ColRef {
            match alias {
                Some(q) => ColRef::qualified(q, a),
                None => ColRef::new(a),
            }
        };
        let key = alias.unwrap_or(rel).to_string();

        // Which attributes must the leaf produce?
        let wanted: Vec<String> = match (needed, self.opts.prune_partitions) {
            (Some(n), true) => attrs
                .iter()
                .filter(|a| n.iter().any(|r| mk(a).matches(r)))
                .cloned()
                .collect(),
            _ => attrs.clone(),
        };

        let parts = self.udb.partitions_of(rel)?;
        if parts.is_empty() {
            return Err(Error::InvalidQuery(format!(
                "relation `{rel}` has no partitions"
            )));
        }

        // Greedy set cover of the wanted attributes.
        let mut chosen: Vec<&URelation> = Vec::new();
        let mut uncovered: BTreeSet<&str> = wanted.iter().map(String::as_str).collect();
        while !uncovered.is_empty() {
            let best = parts
                .iter()
                .filter(|p| !chosen.iter().any(|c| std::ptr::eq(*c, *p)))
                .max_by_key(|p| {
                    (
                        p.value_cols()
                            .iter()
                            .filter(|c| uncovered.contains(c.as_str()))
                            .count(),
                        std::cmp::Reverse(p.value_cols().len()),
                    )
                })
                .filter(|p| {
                    p.value_cols()
                        .iter()
                        .any(|c| uncovered.contains(c.as_str()))
                })
                .ok_or_else(|| {
                    Error::InvalidDatabase(format!(
                        "attributes {uncovered:?} of `{rel}` are not covered"
                    ))
                })?;
            for c in best.value_cols() {
                uncovered.remove(c.as_str());
            }
            chosen.push(best);
        }
        if chosen.is_empty() {
            // Presence-only leaf (e.g. π over other side of a join):
            // the smallest partition witnesses tuple existence in a
            // *reduced* database.
            chosen.push(parts.iter().min_by_key(|p| p.len()).unwrap());
        }

        // Build one leaf TPlan per chosen partition, then fold with merge.
        // Later partitions drop value columns already provided.
        let mut covered: BTreeSet<String> = BTreeSet::new();
        let mut acc: Option<TPlan> = None;
        let chosen_len = chosen.len();
        for p in chosen {
            let keep: Vec<&String> = p
                .value_cols()
                .iter()
                .filter(|c| {
                    (wanted.contains(*c) || chosen_len == 1 && wanted.is_empty())
                        && !covered.contains(*c)
                })
                .collect();
            for c in &keep {
                covered.insert((*c).clone());
            }
            let leaf = self.leaf(p, &key, &mk, &keep)?;
            acc = Some(match acc {
                None => leaf,
                Some(prev) => self.merge(prev, leaf)?,
            });
        }
        let mut t = acc.expect("at least one partition");
        // The merge fold visits partitions in coverage order; restore the
        // logical attribute order for the output.
        t.value_cols
            .sort_by_key(|c| attrs.iter().position(|a| *c == mk(a)).unwrap_or(usize::MAX));
        Ok(t)
    }

    /// A scan of one encoded partition, re-projected to translator-unique
    /// column names.
    fn leaf(
        &mut self,
        p: &URelation,
        key: &str,
        mk: &dyn Fn(&str) -> ColRef,
        keep: &[&String],
    ) -> Result<TPlan> {
        let mut cols: Vec<(Expr, ColRef)> = Vec::new();
        let mut desc_cols = Vec::new();
        for i in 0..p.desc_arity() {
            let n = self.fresh();
            let dv = ColRef::new(format!("dv{n}"));
            let dr = ColRef::new(format!("dr{n}"));
            cols.push((Expr::Col(ColRef::new(format!("d{i}_var"))), dv.clone()));
            cols.push((Expr::Col(ColRef::new(format!("d{i}_rng"))), dr.clone()));
            desc_cols.push((dv, dr));
        }
        let tid = ColRef::new(format!("ti{}_{key}", self.fresh()));
        cols.push((Expr::Col(ColRef::new("tid")), tid.clone()));
        let mut value_cols = Vec::new();
        for c in keep {
            let out = mk(c);
            cols.push((Expr::Col(ColRef::new(c.as_str())), out.clone()));
            value_cols.push(out);
        }
        Ok(TPlan {
            plan: Plan::scan(p.name.clone()).project(cols),
            desc_cols,
            tid_cols: vec![(key.to_string(), tid)],
            value_cols,
        })
    }

    /// The ψ condition between two descriptor column sets.
    fn psi(l: &[(ColRef, ColRef)], r: &[(ColRef, ColRef)]) -> Expr {
        let mut parts = Vec::with_capacity(l.len() * r.len());
        for (lv, lr) in l {
            for (rv, rr) in r {
                parts.push(Expr::or([
                    Expr::Col(lv.clone()).ne(Expr::Col(rv.clone())),
                    Expr::Col(lr.clone()).eq(Expr::Col(rr.clone())),
                ]));
            }
        }
        Expr::and(parts)
    }

    /// `merge` (Figure 4): join on shared tuple-id keys (α) and descriptor
    /// consistency (ψ); duplicate tuple-id and value columns of the right
    /// side are projected away.
    pub(crate) fn merge(&mut self, l: TPlan, r: TPlan) -> Result<TPlan> {
        let mut alpha = Vec::new();
        let mut dup_tids: Vec<&ColRef> = Vec::new();
        for (rk, rc) in &r.tid_cols {
            if let Some((_, lc)) = l.tid_cols.iter().find(|(lk, _)| lk == rk) {
                alpha.push(Expr::Col(lc.clone()).eq(Expr::Col(rc.clone())));
                dup_tids.push(rc);
            }
        }
        if alpha.is_empty() {
            return Err(Error::InvalidQuery(
                "merge requires a shared tuple-id attribute".into(),
            ));
        }
        let psi = Self::psi(&l.desc_cols, &r.desc_cols);
        let pred = Expr::and(alpha.into_iter().chain(psi.conjuncts()));
        let plan = l.plan.join(r.plan, pred);

        // Output bookkeeping: descriptors concatenate; duplicate tuple ids
        // and duplicate value columns (valid databases agree on them) drop.
        let mut desc_cols = l.desc_cols;
        desc_cols.extend(r.desc_cols);
        let mut tid_cols = l.tid_cols;
        let mut value_cols = l.value_cols;
        let mut drop: Vec<ColRef> = dup_tids.into_iter().cloned().collect();
        for (rk, rc) in r.tid_cols {
            if !drop.contains(&rc) {
                tid_cols.push((rk, rc));
            }
        }
        for vc in r.value_cols {
            if value_cols.contains(&vc) {
                drop.push(vc);
            } else {
                value_cols.push(vc);
            }
        }
        // Project away dropped columns to keep every schema name unique.
        let mut cols: Vec<(Expr, ColRef)> = Vec::new();
        for (dv, dr) in &desc_cols {
            cols.push((Expr::Col(dv.clone()), dv.clone()));
            cols.push((Expr::Col(dr.clone()), dr.clone()));
        }
        for (_, tc) in &tid_cols {
            cols.push((Expr::Col(tc.clone()), tc.clone()));
        }
        for vc in &value_cols {
            cols.push((Expr::Col(vc.clone()), vc.clone()));
        }
        let plan = if drop.is_empty() {
            plan
        } else {
            plan.project(cols)
        };
        Ok(TPlan {
            plan,
            desc_cols,
            tid_cols,
            value_cols,
        })
    }

    /// `[[Q1 ⋈φ Q2]] := π(U1 ⋈_{φ∧ψ} U2)` with `T1 ∩ T2 = ∅`.
    fn join(&mut self, l: TPlan, r: TPlan, pred: Expr) -> Result<TPlan> {
        if l.tid_cols
            .iter()
            .any(|(lk, _)| r.tid_cols.iter().any(|(rk, _)| lk == rk))
        {
            return Err(Error::InvalidQuery(
                "join sides share a tuple-id source; alias one side".into(),
            ));
        }
        if l.value_cols.iter().any(|c| r.value_cols.contains(c)) {
            return Err(Error::InvalidQuery(
                "join sides share attribute names; alias one side".into(),
            ));
        }
        let psi = Self::psi(&l.desc_cols, &r.desc_cols);
        let full = Expr::and(pred.conjuncts().into_iter().chain(psi.conjuncts()));
        let plan = l.plan.join(r.plan, full);
        let mut desc_cols = l.desc_cols;
        desc_cols.extend(r.desc_cols);
        let mut tid_cols = l.tid_cols;
        tid_cols.extend(r.tid_cols);
        let mut value_cols = l.value_cols;
        value_cols.extend(r.value_cols);
        Ok(TPlan {
            plan,
            desc_cols,
            tid_cols,
            value_cols,
        })
    }

    /// `[[πX(Q)]] := π_{D,T,X}(U)`.
    fn project(&mut self, t: TPlan, out_attrs: &[ColRef]) -> Result<TPlan> {
        let mut cols: Vec<(Expr, ColRef)> = Vec::new();
        for (dv, dr) in &t.desc_cols {
            cols.push((Expr::Col(dv.clone()), dv.clone()));
            cols.push((Expr::Col(dr.clone()), dr.clone()));
        }
        for (_, tc) in &t.tid_cols {
            cols.push((Expr::Col(tc.clone()), tc.clone()));
        }
        let mut value_cols = Vec::new();
        for a in out_attrs {
            let c = t
                .value_cols
                .iter()
                .find(|v| *v == a)
                .ok_or_else(|| Error::InvalidQuery(format!("projection attr `{a}` missing")))?;
            cols.push((Expr::Col(c.clone()), c.clone()));
            value_cols.push(c.clone());
        }
        Ok(TPlan {
            plan: t.plan.project(cols),
            desc_cols: t.desc_cols,
            tid_cols: t.tid_cols,
            value_cols,
        })
    }

    /// Union: pad the smaller descriptor encoding, align value columns by
    /// name, add `Null` columns for the other side's tuple ids.
    fn union(&mut self, l: TPlan, r: TPlan) -> Result<TPlan> {
        if l.value_cols.len() != r.value_cols.len() {
            return Err(Error::InvalidQuery("union arity mismatch".into()));
        }
        // Match r's value columns to l's by name.
        let r_match: Vec<ColRef> = l
            .value_cols
            .iter()
            .map(|lc| {
                r.value_cols
                    .iter()
                    .find(|rc| rc.name == lc.name)
                    .cloned()
                    .ok_or_else(|| {
                        Error::InvalidQuery(format!("union: attribute `{lc}` missing on the right"))
                    })
            })
            .collect::<Result<_>>()?;

        let arity = l.desc_cols.len().max(r.desc_cols.len());
        let mut out_desc = Vec::new();
        for _ in 0..arity {
            let n = self.fresh();
            out_desc.push((ColRef::new(format!("dv{n}")), ColRef::new(format!("dr{n}"))));
        }
        // Output tuple-id keys: l's, then r-only keys.
        let mut out_keys: Vec<String> = l.tid_cols.iter().map(|(k, _)| k.clone()).collect();
        for (rk, _) in &r.tid_cols {
            if !out_keys.contains(rk) {
                out_keys.push(rk.clone());
            }
        }
        let out_tids: Vec<(String, ColRef)> = out_keys
            .iter()
            .map(|k| (k.clone(), ColRef::new(format!("ti{}_{k}", self.fresh()))))
            .collect();

        let side = |t: &TPlan, vals: &[ColRef]| -> Vec<(Expr, ColRef)> {
            let mut cols = Vec::new();
            for (i, (odv, odr)) in out_desc.iter().enumerate() {
                let (ev, er) = match t.desc_cols.get(i) {
                    Some((dv, dr)) => (Expr::Col(dv.clone()), Expr::Col(dr.clone())),
                    None => match t.desc_cols.first() {
                        // Pad by repeating the first pair (the paper's rule)…
                        Some((dv, dr)) => (Expr::Col(dv.clone()), Expr::Col(dr.clone())),
                        // …or ⊤ ↦ 0 when the side has no descriptors.
                        None => (urel_relalg::lit_i64(0), urel_relalg::lit_i64(0)),
                    },
                };
                cols.push((ev, odv.clone()));
                cols.push((er, odr.clone()));
            }
            for ((k, otc), _) in out_tids.iter().zip(std::iter::repeat(())) {
                let e = match t.tid_cols.iter().find(|(tk, _)| tk == k) {
                    Some((_, tc)) => Expr::Col(tc.clone()),
                    None => Expr::Lit(urel_relalg::Value::Null),
                };
                cols.push((e, otc.clone()));
            }
            for (lc, vc) in l.value_cols.iter().zip(vals) {
                cols.push((Expr::Col(vc.clone()), lc.clone()));
            }
            cols
        };
        let lcols = side(&l, &l.value_cols);
        let rcols = side(&r, &r_match);
        let plan = l
            .plan
            .clone()
            .project(lcols)
            .union(r.plan.clone().project(rcols));
        Ok(TPlan {
            plan,
            desc_cols: out_desc,
            tid_cols: out_tids,
            value_cols: l.value_cols,
        })
    }
}

/// Final projection renaming columns into the canonical layout
/// `d0_var, d0_rng, …, t0, t1, …, <attr display names>` so that
/// [`URelation::decode`] can read the executed result positionally.
fn canonicalize(t: TPlan) -> TPlan {
    let mut cols: Vec<(Expr, ColRef)> = Vec::new();
    let mut desc_cols = Vec::new();
    for (i, (dv, dr)) in t.desc_cols.iter().enumerate() {
        let ov = ColRef::new(format!("d{i}_var"));
        let or = ColRef::new(format!("d{i}_rng"));
        cols.push((Expr::Col(dv.clone()), ov.clone()));
        cols.push((Expr::Col(dr.clone()), or.clone()));
        desc_cols.push((ov, or));
    }
    let mut tid_cols = Vec::new();
    for (i, (k, tc)) in t.tid_cols.iter().enumerate() {
        let oc = ColRef::new(format!("t{i}_{k}"));
        cols.push((Expr::Col(tc.clone()), oc.clone()));
        tid_cols.push((k.clone(), oc));
    }
    let mut value_cols = Vec::new();
    for vc in &t.value_cols {
        let oc = ColRef::new(vc.to_string());
        cols.push((Expr::Col(vc.clone()), oc.clone()));
        value_cols.push(oc);
    }
    TPlan {
        plan: t.plan.project(cols),
        desc_cols,
        tid_cols,
        value_cols,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{oracle_certain, oracle_possible, table, table_as};
    use crate::udb::figure1_database;
    use urel_relalg::{col, lit_str, Value};

    fn enemy_tanks() -> UQuery {
        table("r")
            .select(Expr::and([
                col("type").eq(lit_str("Tank")),
                col("faction").eq(lit_str("Enemy")),
            ]))
            .project(["id"])
    }

    #[test]
    fn plan_cache_reuses_prepared_statements() {
        let db = figure1_database();
        let prepared = PreparedDb::new(&db);
        assert_eq!(prepared.cached_plan_count(), 0);
        let first = prepared.possible(&enemy_tanks()).unwrap();
        let cached = prepared.cached_plan_count();
        assert!(cached >= 1);
        // Re-running the same statement hits the cache (no new entry)
        // and answers identically.
        let second = prepared.possible(&enemy_tanks()).unwrap();
        assert_eq!(prepared.cached_plan_count(), cached);
        assert_eq!(first, second);
        // A different statement — or different options for the same one
        // — occupies its own slot.
        prepared.possible(&table("r").project(["id"])).unwrap();
        assert!(prepared.cached_plan_count() > cached);
        let n = prepared.cached_plan_count();
        prepared
            .evaluate_with(
                &enemy_tanks(),
                TranslateOptions {
                    prune_partitions: false,
                },
                true,
            )
            .unwrap();
        assert_eq!(prepared.cached_plan_count(), n + 1);
    }

    #[test]
    fn translation_matches_oracle_for_example_3_6() {
        let db = figure1_database();
        let q = enemy_tanks();
        let got = possible(&db, &q).unwrap();
        let want = oracle_possible(&q, &db, 64).unwrap();
        assert!(got.set_eq(&want), "got {got}\nwant {want}");
    }

    #[test]
    fn result_urelation_decodes_per_world() {
        // The result U-relation, restricted to each world, must equal the
        // query answer in that world (Section 3's correctness criterion).
        let db = figure1_database();
        let q = enemy_tanks();
        let u = evaluate(&db, &q).unwrap();
        for f in db.world.worlds(64).unwrap() {
            let got = u.tuples_in_world(&db.world, &f);
            let want = crate::algebra::oracle_eval(&q, &db, &f, 64).unwrap();
            assert!(
                got.set_eq(&want.sorted_set()),
                "world {f:?}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn self_join_example_3_7() {
        let db = figure1_database();
        let s1 = table_as("r", "s1").select(Expr::and([
            col("s1.type").eq(lit_str("Tank")),
            col("s1.faction").eq(lit_str("Enemy")),
        ]));
        let s2 = table_as("r", "s2").select(Expr::and([
            col("s2.type").eq(lit_str("Tank")),
            col("s2.faction").eq(lit_str("Enemy")),
        ]));
        let q = s1
            .join(s2, col("s1.id").ne(col("s2.id")))
            .project(["s1.id", "s2.id"]);
        let got = possible(&db, &q).unwrap();
        let want = oracle_possible(&q, &db, 64).unwrap();
        assert!(got.set_eq(&want), "got {got}\nwant {want}");
        // The inconsistent descriptor combinations (vehicle c at two
        // positions at once) must be filtered: exactly 4 pairs.
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn union_translation_matches_oracle() {
        let db = figure1_database();
        let q = table("r")
            .select(col("faction").eq(lit_str("Enemy")))
            .project(["id"])
            .union(
                table("r")
                    .select(col("type").eq(lit_str("Transport")))
                    .project(["id"]),
            );
        let got = possible(&db, &q).unwrap();
        let want = oracle_possible(&q, &db, 64).unwrap();
        assert!(got.set_eq(&want), "got {got}\nwant {want}");
        // Per-world decode equivalence as well.
        let u = evaluate(&db, &q).unwrap();
        for f in db.world.worlds(64).unwrap() {
            let got = u.tuples_in_world(&db.world, &f);
            let want = crate::algebra::oracle_eval(&q, &db, &f, 64).unwrap();
            assert!(got.set_eq(&want.sorted_set()), "world {f:?}");
        }
    }

    #[test]
    fn parsimony_one_logical_join_one_physical_join_per_merge_or_join() {
        // Translation size: joins in the plan = logical joins + merges.
        // `enemy_tanks` needs id, type, faction → three partitions →
        // two merges; zero logical joins.
        let db = figure1_database();
        let t = translate(&db, &enemy_tanks()).unwrap();
        assert_eq!(t.plan.join_count(), 2);
        // A single-attribute projection touches one partition: no joins.
        let t = translate(&db, &table("r").project(["type"])).unwrap();
        assert_eq!(t.plan.join_count(), 0);
    }

    #[test]
    fn reduced_projection_is_just_the_partition() {
        // On a reduced database, π_type(R) must not merge anything: the
        // answer is the type partition itself.
        let db = figure1_database();
        let q = table("r").project(["type"]);
        let got = possible(&db, &q).unwrap();
        let want = oracle_possible(&q, &db, 64).unwrap();
        assert!(got.set_eq(&want));
    }

    #[test]
    fn naive_translation_merges_everything_but_agrees() {
        let db = figure1_database();
        let q = table("r").project(["type"]).poss();
        let naive = translate_with(
            &db,
            &q,
            TranslateOptions {
                prune_partitions: false,
            },
        )
        .unwrap();
        assert_eq!(naive.plan.join_count(), 2, "P1 merges all partitions");
        let cat = db.to_catalog();
        let rel = exec::execute(&naive.plan, &cat).unwrap();
        let want = oracle_possible(&table("r").project(["type"]), &db, 64).unwrap();
        assert!(rel.set_eq(&want.sorted_set()));
    }

    #[test]
    fn optimizer_does_not_change_results() {
        let db = figure1_database();
        let q = enemy_tanks();
        let unopt = evaluate_with(&db, &q, TranslateOptions::default(), false).unwrap();
        let opt = evaluate_with(&db, &q, TranslateOptions::default(), true).unwrap();
        assert!(unopt.possible_tuples().set_eq(&opt.possible_tuples()));
    }

    #[test]
    fn certain_answers_via_oracle_stay_empty() {
        let db = figure1_database();
        let cert = oracle_certain(&enemy_tanks(), &db, 64).unwrap();
        assert!(cert.is_empty());
    }

    #[test]
    fn empty_projection_tracks_tuple_presence() {
        // π∅ (plan P3 uses it): no value columns, but tuple presence per
        // world must still be right — vehicle count is 4 in every world.
        let db = figure1_database();
        let q = table("r").project(Vec::<String>::new());
        let u = evaluate(&db, &q).unwrap();
        assert!(u.value_cols().is_empty());
        for f in db.world.worlds(64).unwrap() {
            let got = u.tuples_in_world(&db.world, &f);
            // A 0-ary relation has at most one (empty) tuple; it is
            // present because r is non-empty in every world.
            assert_eq!(got.len(), 1);
        }
    }

    #[test]
    fn poss_in_mid_query_acts_as_certain_table() {
        // poss(σ_Faction='Enemy'(R)) is a fixed set; selecting over it
        // again must agree with the oracle's nested-poss semantics.
        let db = figure1_database();
        let q = table("r")
            .select(col("faction").eq(lit_str("Enemy")))
            .project(["id"])
            .poss()
            .select(col("id").gt(urel_relalg::lit_i64(2)));
        let got = possible(&db, &q).unwrap();
        let want = crate::algebra::oracle_possible(&q, &db, 64).unwrap();
        assert!(got.set_eq(&want), "got {got}\nwant {want}");
    }

    #[test]
    fn union_pads_mismatched_descriptor_arities() {
        // Left side: 2-variable descriptors (from a join); right side:
        // descriptor-free (certain) rows. The union must pad and stay
        // correct per world.
        let db = figure1_database();
        let left = table_as("r", "x1")
            .select(col("x1.faction").eq(lit_str("Enemy")))
            .join(
                table_as("r", "x2").select(col("x2.type").eq(lit_str("Transport"))),
                col("x1.id").ne(col("x2.id")),
            )
            .project(["x1.id"]);
        let right = table("r")
            .select(col("type").eq(lit_str("Tank")))
            .project(["id"]);
        let q = left.union(right);
        let got = possible(&db, &q).unwrap();
        let want = oracle_possible(&q, &db, 64).unwrap();
        assert!(got.set_eq(&want), "got {got}\nwant {want}");
        let u = evaluate(&db, &q).unwrap();
        for f in db.world.worlds(64).unwrap() {
            let got_w = u.tuples_in_world(&db.world, &f);
            let want_w = crate::algebra::oracle_eval(&q, &db, &f, 64).unwrap();
            assert!(got_w.set_eq(&want_w.sorted_set()), "world {f:?}");
        }
    }

    #[test]
    fn poss_of_full_table_lists_all_possible_vehicles() {
        let db = figure1_database();
        let got = possible(&db, &table("r")).unwrap();
        let want = oracle_possible(&table("r"), &db, 64).unwrap();
        assert!(got.set_eq(&want));
        // 1 (certain) + 2 for b + 2 for c + 4 for d = 9 possible tuples.
        assert_eq!(got.len(), 9);
        let _ = Value::Int(0);
    }
}
