//! Normalization of ws-descriptors — Algorithm 1 (Section 4).
//!
//! Variables that co-occur in some descriptor are fused: each connected
//! component `Gᵢ` of the co-occurrence graph becomes a single fresh
//! variable whose domain is the product of the member domains, with the
//! injective mixed-radix encoding playing the role of the paper's
//! `f_{|Gᵢ|}`. Every row's descriptor is expanded over the unconstrained
//! members of its component, yielding descriptors of size ≤ 1
//! (Definition 4.1). The blow-up is inherent — it is exactly the
//! exponential separation between U-relations and WSDs (Theorem 5.2).

use crate::descriptor::WsDescriptor;
use crate::error::{Error, Result};
use crate::udb::UDatabase;
use crate::urelation::{URelation, URow};
use crate::world::{Var, WorldTable};
use std::collections::BTreeMap;

/// Hard cap on a fused component's domain size; beyond this the
/// normalization would not fit in memory anyway.
const MAX_COMPONENT_DOMAIN: u128 = 1 << 22;

/// Union–find over variable ids.
struct UnionFind {
    parent: BTreeMap<Var, Var>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind {
            parent: BTreeMap::new(),
        }
    }

    fn find(&mut self, v: Var) -> Var {
        let p = *self.parent.entry(v).or_insert(v);
        if p == v {
            return v;
        }
        let root = self.find(p);
        self.parent.insert(v, root);
        root
    }

    fn union(&mut self, a: Var, b: Var) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// The result of normalizing: the rewritten U-relations plus the new
/// world table `W'`.
pub struct Normalized {
    /// Rewritten relations, in input order.
    pub relations: Vec<URelation>,
    /// The new world table (one variable per fused component, plus the
    /// untouched variables).
    pub world: WorldTable,
    /// Fused components: new variable → ordered original members.
    pub components: BTreeMap<Var, Vec<Var>>,
}

/// Normalize a set of U-relations sharing one world table (Algorithm 1).
///
/// The input should be reduced (Algorithm 1's precondition); rows whose
/// descriptors are already of size ≤ 1 and whose variable co-occurs with
/// nothing are passed through unchanged.
pub fn normalize_urelations(us: &[&URelation], w: &WorldTable) -> Result<Normalized> {
    // 1. Connected components of the co-occurrence graph.
    let mut uf = UnionFind::new();
    for v in w.vars() {
        uf.find(v);
    }
    for u in us {
        for row in u.rows() {
            let vars: Vec<Var> = row.desc.vars().collect();
            for pair in vars.windows(2) {
                uf.union(pair[0], pair[1]);
            }
        }
    }
    let mut members: BTreeMap<Var, Vec<Var>> = BTreeMap::new();
    for v in w.vars() {
        members.entry(uf.find(v)).or_default().push(v);
    }

    // 2. One fresh variable per component; domain = product of member
    // domains under the mixed-radix encoding.
    let mut new_world = WorldTable::new();
    let mut comp_var: BTreeMap<Var, Var> = BTreeMap::new(); // member → fused var
    let mut comp_members: BTreeMap<Var, Vec<Var>> = BTreeMap::new();
    let mut strides: BTreeMap<Var, (u64, Vec<u64>)> = BTreeMap::new(); // member → (stride, domain)
    for (next_id, (_, mut group)) in (1u32..).zip(members) {
        group.sort();
        let fused = Var(next_id);
        let mut size: u128 = 1;
        let mut stride: u64 = 1;
        let mut probs: Vec<f64> = vec![1.0];
        for &m in &group {
            let dom = w.domain(m)?.to_vec();
            size *= dom.len() as u128;
            if size > MAX_COMPONENT_DOMAIN {
                return Err(Error::TooLarge(format!(
                    "fused component domain exceeds {MAX_COMPONENT_DOMAIN}"
                )));
            }
            // Probabilities multiply across members in stride order.
            if w.is_probabilistic() {
                let mut next_probs = Vec::with_capacity(probs.len() * dom.len());
                for &dval in &dom {
                    let p = w.prob(m, dval)?;
                    for q in &probs {
                        next_probs.push(q * p);
                    }
                }
                probs = next_probs;
            }
            strides.insert(m, (stride, dom.clone()));
            stride = stride
                .checked_mul(dom.len() as u64)
                .ok_or_else(|| Error::TooLarge("component stride overflow".into()))?;
            comp_var.insert(m, fused);
        }
        new_world.add_var(fused, (0..size as u64).collect())?;
        if w.is_probabilistic() {
            new_world.set_probabilities(fused, probs)?;
        }
        comp_members.insert(fused, group);
    }

    // 3. Rewrite every row: expand over the unconstrained members of its
    // component.
    let mut relations = Vec::with_capacity(us.len());
    for u in us {
        let mut out = URelation::new(
            u.name.clone(),
            u.tid_cols().to_vec(),
            u.value_cols().to_vec(),
        );
        for row in u.rows() {
            if row.desc.is_empty() {
                out.push(row.clone())?;
                continue;
            }
            let fused = comp_var[&row.desc.iter().next().unwrap().0];
            let group = &comp_members[&fused];
            // Base offset from the constrained members; free members are
            // the rest.
            let mut base: u64 = 0;
            let mut free: Vec<Var> = Vec::new();
            for &m in group {
                let (stride, dom) = &strides[&m];
                match row.desc.get(m) {
                    Some(val) => {
                        let idx = dom
                            .binary_search(&val)
                            .map_err(|_| Error::UnknownWorld(format!("{m} ↦ {val} not in W")))?
                            as u64;
                        base += idx * stride;
                    }
                    None => free.push(m),
                }
            }
            // Enumerate all completions over the free members.
            let mut offsets: Vec<u64> = vec![0];
            for m in &free {
                let (stride, dom) = &strides[m];
                let mut next = Vec::with_capacity(offsets.len() * dom.len());
                for idx in 0..dom.len() as u64 {
                    for &o in &offsets {
                        next.push(o + idx * stride);
                    }
                }
                offsets = next;
            }
            for o in offsets {
                out.push(URow::new(
                    WsDescriptor::singleton(fused, base + o),
                    row.tids.to_vec(),
                    row.vals.to_vec(),
                ))?;
            }
        }
        relations.push(out);
    }

    Ok(Normalized {
        relations,
        world: new_world,
        components: comp_members,
    })
}

/// Normalize a whole U-relational database (Theorem 4.2). The result
/// represents the same world-set with all descriptors of size ≤ 1.
pub fn normalize(db: &UDatabase) -> Result<UDatabase> {
    let rels: Vec<String> = db.relations().map(str::to_string).collect();
    let mut refs: Vec<&URelation> = Vec::new();
    let mut layout: Vec<(String, usize)> = Vec::new();
    for r in &rels {
        let parts = db.partitions_of(r)?;
        layout.push((r.clone(), parts.len()));
        refs.extend(parts.iter());
    }
    let normalized = normalize_urelations(&refs, &db.world)?;
    let mut out = UDatabase::new(normalized.world);
    let mut it = normalized.relations.into_iter();
    for (r, n) in layout {
        out.add_relation(&r, db.attrs(&r)?.to_vec())?;
        for _ in 0..n {
            out.add_partition(&r, it.next().expect("layout matches"))?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udb::figure1_database;
    use std::collections::BTreeSet;
    use urel_relalg::Value;

    /// The exact database of Figure 5(a).
    fn figure5_input() -> (URelation, WorldTable) {
        let mut w = WorldTable::new();
        w.add_var(Var(1), vec![1, 2]).unwrap(); // c1
        w.add_var(Var(2), vec![1, 2]).unwrap(); // c2
        w.add_var(Var(3), vec![1, 2]).unwrap(); // c3
        let mut u = URelation::partition("u", ["a"]);
        let d = |pairs: &[(u32, u64)]| {
            WsDescriptor::from_pairs(pairs.iter().map(|&(v, x)| (Var(v), x))).unwrap()
        };
        u.push_simple(d(&[(1, 1)]), 1, vec![Value::str("a1")])
            .unwrap();
        u.push_simple(d(&[(1, 1), (2, 2)]), 2, vec![Value::str("a2")])
            .unwrap();
        u.push_simple(d(&[(1, 2)]), 2, vec![Value::str("a3")])
            .unwrap();
        u.push_simple(d(&[(3, 1)]), 3, vec![Value::str("a4")])
            .unwrap();
        u.push_simple(d(&[(3, 2)]), 3, vec![Value::str("a5")])
            .unwrap();
        (u, w)
    }

    #[test]
    fn figure5_normalization() {
        let (u, w) = figure5_input();
        let n = normalize_urelations(&[&u], &w).unwrap();
        let out = &n.relations[0];
        assert!(out.is_normalized());
        // Figure 5(b): 7 rows — a1 twice, a2 once, a3 twice, a4, a5.
        assert_eq!(out.len(), 7);
        let count = |val: &str| {
            out.rows()
                .iter()
                .filter(|r| r.vals[0] == Value::str(val))
                .count()
        };
        assert_eq!(count("a1"), 2);
        assert_eq!(count("a2"), 1);
        assert_eq!(count("a3"), 2);
        assert_eq!(count("a4"), 1);
        assert_eq!(count("a5"), 1);
        // The fused component {c1, c2} has 4 domain values; c3 keeps 2.
        let sizes: BTreeSet<usize> = n
            .world
            .vars()
            .map(|v| n.world.domain(v).unwrap().len())
            .collect();
        assert_eq!(sizes, BTreeSet::from([2, 4]));
        // a2 (c1↦1, c2↦2) and one expansion of a1 (c1↦1 with c2↦2) share
        // the same fused value.
        let a2 = out
            .rows()
            .iter()
            .find(|r| r.vals[0] == Value::str("a2"))
            .unwrap();
        assert!(out
            .rows()
            .iter()
            .any(|r| r.vals[0] == Value::str("a1") && r.desc == a2.desc));
    }

    #[test]
    fn theorem_4_2_world_set_is_preserved() {
        let (u, w) = figure5_input();
        let mut db = UDatabase::new(w);
        db.add_relation("r", ["a"]).unwrap();
        db.add_partition("r", u).unwrap();
        let norm = normalize(&db).unwrap();

        // Same number of worlds, and the same *set* of world instances.
        assert_eq!(db.world.world_count_exact(), norm.world.world_count_exact());
        let canon = |db: &UDatabase| -> Vec<String> {
            let mut v: Vec<String> = db
                .possible_worlds(64)
                .unwrap()
                .iter()
                .map(|(_, inst)| format!("{}", inst["r"].sorted_set()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(&db), canon(&norm));
    }

    #[test]
    fn figure1_database_is_untouched_modulo_renaming() {
        // All descriptors in Figure 1 already have size ≤ 1 and no
        // co-occurrence, so normalization only renames variables.
        let db = figure1_database();
        let norm = normalize(&db).unwrap();
        assert_eq!(db.total_rows(), norm.total_rows());
        assert_eq!(db.world.world_count_exact(), norm.world.world_count_exact());
        for rel in ["r"] {
            for (a, b) in db
                .partitions_of(rel)
                .unwrap()
                .iter()
                .zip(norm.partitions_of(rel).unwrap())
            {
                assert!(b.is_normalized());
                assert_eq!(a.len(), b.len());
            }
        }
    }

    #[test]
    fn probabilities_multiply_through_fusion() {
        let mut w = WorldTable::new();
        w.add_var(Var(1), vec![0, 1]).unwrap();
        w.add_var(Var(2), vec![0, 1]).unwrap();
        w.set_probabilities(Var(1), vec![0.25, 0.75]).unwrap();
        w.set_probabilities(Var(2), vec![0.5, 0.5]).unwrap();
        let mut u = URelation::partition("u", ["a"]);
        u.push_simple(
            WsDescriptor::from_pairs([(Var(1), 0), (Var(2), 1)]).unwrap(),
            1,
            vec![Value::Int(1)],
        )
        .unwrap();
        let n = normalize_urelations(&[&u], &w).unwrap();
        let fused = n.components.keys().next().copied().unwrap();
        // The fused row's probability must be 0.25 × 0.5.
        let row = &n.relations[0].rows()[0];
        let (v, val) = *row.desc.iter().next().unwrap();
        assert_eq!(v, fused);
        assert!((n.world.prob(v, val).unwrap() - 0.125).abs() < 1e-12);
        // And the fused distribution still sums to one.
        let total: f64 = n
            .world
            .domain(fused)
            .unwrap()
            .iter()
            .map(|&l| n.world.prob(fused, l).unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn oversized_components_are_rejected() {
        let mut w = WorldTable::new();
        // 8 variables of domain 8 co-occurring pairwise → 8^8 = 2^24 > cap.
        for i in 1..=8 {
            w.add_var(Var(i), (0..8).collect()).unwrap();
        }
        let mut u = URelation::partition("u", ["a"]);
        let pairs: Vec<(Var, u64)> = (1..=8).map(|i| (Var(i), 0)).collect();
        u.push_simple(
            WsDescriptor::from_pairs(pairs).unwrap(),
            1,
            vec![Value::Int(0)],
        )
        .unwrap();
        assert!(matches!(
            normalize_urelations(&[&u], &w),
            Err(Error::TooLarge(_))
        ));
    }
}
