//! Uncertainty-*creating* and world-manipulation constructs — the
//! "support for new language constructs" direction of Section 7,
//! following the companion paper [5] (Antova, Koch, Olteanu, SIGMOD 2007:
//! "From Complete to Incomplete Information and Back") and MayBMS.
//!
//! * [`repair_key`] — the `REPAIR KEY` primitive: given a complete
//!   relation and a (possibly violated) key, create one world per maximal
//!   consistent repair: each key group becomes a choice-of-one, encoded
//!   with one fresh variable per multi-tuple group (worlds multiply
//!   across groups). With a weight column the choices become
//!   probabilistic, weights normalized per group.
//! * [`condition_domain`] — world removal: restrict a variable's domain
//!   (e.g. after cleaning confirms some readings impossible), renormalize
//!   probabilities, and reduce away the dead rows.
//! * [`expand_answers`] — the naive expand-all-worlds oracle: every
//!   world is materialized and queried separately (through the retained
//!   reference engine), giving ground-truth possible/certain answers
//!   that the differential test harness checks the streaming translated
//!   path against.

use crate::algebra::UQuery;
use crate::error::{Error, Result};
use crate::reduce::reduce;
use crate::udb::UDatabase;
use crate::urelation::URelation;
use crate::world::{Var, WorldTable};
use crate::WsDescriptor;
use std::collections::{BTreeMap, BTreeSet};
use urel_relalg::{exec, Catalog, ColRef, Expr, Plan, Relation, Row, Schema, Value};

/// `REPAIR KEY key_attrs IN rel [WEIGHT BY weight_attr]`.
///
/// Builds a U-relational database whose worlds are exactly the maximal
/// repairs of the key constraint: per key group, one tuple survives.
/// The weight column (if given) must hold positive integers; it is
/// consumed (not part of the output schema) and induces the probability
/// distribution of each group's choice.
pub fn repair_key(
    rel_name: &str,
    input: &Relation,
    key_attrs: &[&str],
    weight_attr: Option<&str>,
) -> Result<UDatabase> {
    let schema = input.schema();
    let key_idx: Vec<usize> = key_attrs
        .iter()
        .map(|a| schema.resolve_name(a).map_err(Error::from))
        .collect::<Result<_>>()?;
    let weight_idx = weight_attr
        .map(|a| schema.resolve_name(a).map_err(Error::from))
        .transpose()?;

    // Output attributes: all but the weight column.
    let out_cols: Vec<(usize, String)> = schema
        .columns()
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != weight_idx)
        .map(|(i, c)| (i, c.to_string()))
        .collect();

    // Group by key value.
    let mut groups: BTreeMap<Vec<Value>, Vec<&urel_relalg::Row>> = BTreeMap::new();
    for row in input.rows() {
        let key: Vec<Value> = key_idx.iter().map(|&i| row[i].clone()).collect();
        groups.entry(key).or_default().push(row);
    }

    let mut world = WorldTable::new();
    let mut db_rows: Vec<(WsDescriptor, Vec<Value>)> = Vec::new();
    for (_key, rows) in groups {
        if rows.len() == 1 {
            let vals: Vec<Value> = out_cols.iter().map(|(i, _)| rows[0][*i].clone()).collect();
            db_rows.push((WsDescriptor::empty(), vals));
            continue;
        }
        let var = world.fresh_var(rows.len() as u64)?;
        if let Some(wi) = weight_idx {
            let weights: Vec<f64> = rows
                .iter()
                .map(|r| {
                    r[wi]
                        .as_int()
                        .filter(|w| *w > 0)
                        .map(|w| w as f64)
                        .ok_or_else(|| {
                            Error::InvalidQuery(format!(
                                "weight must be a positive integer, got {}",
                                r[wi]
                            ))
                        })
                })
                .collect::<Result<_>>()?;
            let total: f64 = weights.iter().sum();
            world.set_probabilities(var, weights.iter().map(|w| w / total).collect())?;
        }
        for (l, row) in rows.iter().enumerate() {
            let vals: Vec<Value> = out_cols.iter().map(|(i, _)| row[*i].clone()).collect();
            db_rows.push((WsDescriptor::singleton(var, l as u64), vals));
        }
    }

    let mut db = UDatabase::new(world);
    let attrs: Vec<String> = out_cols.iter().map(|(_, c)| c.clone()).collect();
    db.add_relation(rel_name, attrs.clone())?;
    let mut u = URelation::partition(format!("u_{rel_name}"), attrs);
    for (tid, (desc, vals)) in db_rows.into_iter().enumerate() {
        u.push_simple(desc, tid as i64 + 1, vals)?;
    }
    db.add_partition(rel_name, u)?;
    db.validate()?;
    Ok(db)
}

/// Remove worlds by restricting a variable's domain to `allowed`.
/// Probabilities (if any) are renormalized over the surviving values;
/// rows guarded by removed values are deleted and the database reduced.
pub fn condition_domain(db: &UDatabase, var: Var, allowed: &[u64]) -> Result<UDatabase> {
    let dom = db.world.domain(var)?.to_vec();
    let keep: Vec<u64> = dom
        .iter()
        .copied()
        .filter(|v| allowed.contains(v))
        .collect();
    if keep.is_empty() {
        return Err(Error::InvalidQuery(format!(
            "conditioning would empty the domain of {var}"
        )));
    }

    // Rebuild the world table with the restricted domain.
    let mut world = WorldTable::new();
    for v in db.world.vars() {
        let d = if v == var {
            keep.clone()
        } else {
            db.world.domain(v)?.to_vec()
        };
        world.add_var(v, d.clone())?;
        if db.world.is_probabilistic() {
            let raw: Vec<f64> = d
                .iter()
                .map(|&val| db.world.prob(v, val))
                .collect::<Result<_>>()?;
            let total: f64 = raw.iter().sum();
            if total <= 0.0 {
                return Err(Error::InvalidQuery(format!(
                    "conditioning leaves {v} with zero probability mass"
                )));
            }
            world.set_probabilities(v, raw.iter().map(|p| p / total).collect())?;
        }
    }

    // Copy relations, dropping rows that require removed values.
    let mut out = UDatabase::new(world);
    for rel in db.relations().map(str::to_string).collect::<Vec<_>>() {
        out.add_relation(&rel, db.attrs(&rel)?.to_vec())?;
        for p in db.partitions_of(&rel)? {
            let mut np = URelation::new(
                p.name.clone(),
                p.tid_cols().to_vec(),
                p.value_cols().to_vec(),
            );
            for row in p.rows() {
                let dead = row.desc.get(var).is_some_and(|val| !keep.contains(&val));
                if !dead {
                    np.push(row.clone())?;
                }
            }
            out.add_partition(&rel, np)?;
        }
    }
    reduce(&mut out)?;
    Ok(out)
}

/// The naive expand-all-worlds oracle: enumerate every possible world,
/// materialize its instance, run the query per world on the relational
/// engine's retained operator-at-a-time path
/// ([`urel_relalg::exec::execute_reference`]), and combine — union for
/// the possible answers, intersection for the certain ones.
///
/// Exponential in the number of variables (`limit` caps the world
/// count), but entirely independent of the `[[·]]` translation, the
/// optimizer and the streaming executor: this is the ground truth the
/// differential test harness pins those components against, in the
/// spirit of UADB-style certain-answer oracle checks.
pub fn expand_answers(udb: &UDatabase, q: &UQuery, limit: usize) -> Result<(Relation, Relation)> {
    let attrs = q.attrs(udb)?;
    let plan = world_plan(udb, q, limit)?;
    let mut possible = Relation::empty(Schema::new(attrs.clone()));
    let mut certain: Option<BTreeSet<Row>> = None;
    for f in udb.world.worlds(limit)? {
        let inst = udb.instantiate(&f)?;
        let mut cat = Catalog::new();
        for (name, rel) in inst {
            cat.insert(name, rel);
        }
        let out = exec::execute_reference(&plan, &cat).map_err(Error::from)?;
        let set: BTreeSet<Row> = out.rows().iter().cloned().collect();
        for row in &set {
            possible.push(row.to_vec())?;
        }
        certain = Some(match certain {
            None => set,
            Some(prev) => prev.intersection(&set).cloned().collect(),
        });
    }
    possible.dedup_in_place();
    let mut cert = Relation::empty(Schema::new(attrs));
    for row in certain.unwrap_or_default() {
        cert.push(row.to_vec())?;
    }
    Ok((possible, cert))
}

/// Compile a logical query into the plain per-world plan the classical
/// semantics prescribes: tables scan the world instance, projections and
/// unions deduplicate (set semantics), and a nested `poss` folds to an
/// inline relation (its value is the same in every world).
fn world_plan(udb: &UDatabase, q: &UQuery, limit: usize) -> Result<Plan> {
    Ok(match q {
        UQuery::Table { rel, alias } => {
            let scan = Plan::scan(rel.clone());
            match alias {
                Some(a) => scan.rename(a.clone()),
                None => scan,
            }
        }
        UQuery::Select { input, pred } => world_plan(udb, input, limit)?.select(pred.clone()),
        UQuery::Project { input, attrs } => {
            let out_attrs = q.attrs(udb)?;
            let cols: Vec<(Expr, ColRef)> = attrs
                .iter()
                .zip(out_attrs)
                .map(|(a, out)| (Expr::Col(ColRef::parse(a)), out))
                .collect();
            world_plan(udb, input, limit)?.project(cols).distinct()
        }
        UQuery::Join { left, right, pred } => {
            world_plan(udb, left, limit)?.join(world_plan(udb, right, limit)?, pred.clone())
        }
        UQuery::Union { left, right } => world_plan(udb, left, limit)?
            .union(world_plan(udb, right, limit)?)
            .distinct(),
        UQuery::Poss { input } => {
            // poss(Q) is world-invariant: expand it once, inline the
            // (already deduplicated) answer set.
            let (poss, _) = expand_answers(udb, input, limit)?;
            Plan::values(poss)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{oracle_certain, oracle_possible, table};
    use crate::prob::tuple_confidences;
    use crate::translate::evaluate;

    fn dirty() -> Relation {
        // Key ssn violated: two candidate names for ssn 1, three for 2.
        Relation::from_rows(
            ["ssn", "name", "w"],
            vec![
                vec![Value::Int(1), Value::str("ann"), Value::Int(3)],
                vec![Value::Int(1), Value::str("anne"), Value::Int(1)],
                vec![Value::Int(2), Value::str("bob"), Value::Int(1)],
                vec![Value::Int(2), Value::str("rob"), Value::Int(1)],
                vec![Value::Int(2), Value::str("bobby"), Value::Int(2)],
                vec![Value::Int(3), Value::str("carla"), Value::Int(9)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn repair_key_enumerates_all_repairs() {
        let db = repair_key("person", &dirty(), &["ssn"], None).unwrap();
        // 2 × 3 repairs; the singleton group adds no worlds.
        assert_eq!(db.world.world_count_exact(), Some(6));
        for (_, inst) in db.possible_worlds(16).unwrap() {
            let r = &inst["person"];
            assert_eq!(r.len(), 3, "every repair keeps one tuple per key");
            // Key uniqueness holds in every world.
            let mut keys: Vec<i64> = r
                .rows()
                .iter()
                .map(|row| row[0].as_int().unwrap())
                .collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), 3);
        }
        // Without a weight column nothing is consumed: all three
        // attributes survive.
        assert_eq!(
            db.attrs("person").unwrap(),
            ["ssn", "name", "w"].map(String::from)
        );
        // With one, it is dropped from the schema.
        let weighted = repair_key("person", &dirty(), &["ssn"], Some("w")).unwrap();
        assert_eq!(
            weighted.attrs("person").unwrap(),
            ["ssn", "name"].map(String::from)
        );
    }

    #[test]
    fn repair_key_with_weights_is_probabilistic() {
        let db = repair_key("person", &dirty(), &["ssn"], Some("w")).unwrap();
        assert!(db.world.is_probabilistic());
        let names = evaluate(&db, &table("person").project(["name"])).unwrap();
        let confs: BTreeMap<String, f64> = tuple_confidences(&names, &db.world)
            .unwrap()
            .into_iter()
            .map(|(v, c)| (v[0].to_string(), c))
            .collect();
        assert!((confs["ann"] - 0.75).abs() < 1e-9);
        assert!((confs["anne"] - 0.25).abs() < 1e-9);
        assert!((confs["bobby"] - 0.5).abs() < 1e-9);
        assert!((confs["carla"] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn conditioning_removes_worlds_and_rows() {
        let db = repair_key("person", &dirty(), &["ssn"], Some("w")).unwrap();
        // Find the variable of the ssn=2 group (domain size 3).
        let var = db
            .world
            .vars()
            .find(|v| db.world.domain(*v).unwrap().len() == 3)
            .unwrap();
        // An auditor rules out "rob" (value 1).
        let cleaned = condition_domain(&db, var, &[0, 2]).unwrap();
        assert_eq!(cleaned.world.world_count_exact(), Some(4));
        let poss = oracle_possible(&table("person").project(["name"]), &cleaned, 16).unwrap();
        assert!(!poss.rows().iter().any(|r| r[0] == Value::str("rob")));
        // Probabilities renormalized: bob 1/(1+2), bobby 2/3.
        let names = evaluate(&cleaned, &table("person").project(["name"])).unwrap();
        let confs: BTreeMap<String, f64> = tuple_confidences(&names, &cleaned.world)
            .unwrap()
            .into_iter()
            .map(|(v, c)| (v[0].to_string(), c))
            .collect();
        assert!((confs["bob"] - 1.0 / 3.0).abs() < 1e-9);
        assert!((confs["bobby"] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn conditioning_guards() {
        let db = repair_key("person", &dirty(), &["ssn"], None).unwrap();
        let var = db.world.vars().next().unwrap();
        assert!(condition_domain(&db, var, &[]).is_err());
        assert!(condition_domain(&db, Var(99), &[0]).is_err());
    }

    #[test]
    fn expand_answers_matches_the_handwritten_oracle() {
        use crate::udb::figure1_database;
        use urel_relalg::{col, lit_str};
        let db = figure1_database();
        let queries = vec![
            table("r").project(["id"]),
            table("r")
                .select(Expr::and([
                    col("type").eq(lit_str("Tank")),
                    col("faction").eq(lit_str("Enemy")),
                ]))
                .project(["id"]),
            table("r").project(["faction"]),
            table("r")
                .select(col("faction").eq(lit_str("Enemy")))
                .project(["id"])
                .poss()
                .select(col("id").gt(urel_relalg::lit_i64(2))),
        ];
        for q in queries {
            let (poss, cert) = expand_answers(&db, &q, 64).unwrap();
            let want_poss = oracle_possible(&q, &db, 64).unwrap();
            let want_cert = oracle_certain(&q, &db, 64).unwrap();
            assert!(poss.set_eq(&want_poss), "possible mismatch for {q:?}");
            assert!(cert.set_eq(&want_cert), "certain mismatch for {q:?}");
        }
    }

    #[test]
    fn expand_answers_handles_self_joins() {
        use crate::algebra::table_as;
        use crate::udb::figure1_database;
        use urel_relalg::{col, lit_str};
        let db = figure1_database();
        let s1 = table_as("r", "s1").select(Expr::and([
            col("s1.type").eq(lit_str("Tank")),
            col("s1.faction").eq(lit_str("Enemy")),
        ]));
        let s2 = table_as("r", "s2").select(Expr::and([
            col("s2.type").eq(lit_str("Tank")),
            col("s2.faction").eq(lit_str("Enemy")),
        ]));
        let q = s1
            .join(s2, col("s1.id").ne(col("s2.id")))
            .project(["s1.id", "s2.id"]);
        let (poss, cert) = expand_answers(&db, &q, 64).unwrap();
        assert!(poss.set_eq(&oracle_possible(&q, &db, 64).unwrap()));
        assert!(cert.set_eq(&oracle_certain(&q, &db, 64).unwrap()));
        assert_eq!(poss.len(), 4); // the paper's U5
    }

    #[test]
    fn repair_key_validates_weights() {
        let bad = Relation::from_rows(
            ["k", "w"],
            vec![
                vec![Value::Int(1), Value::Int(0)],
                vec![Value::Int(1), Value::Int(2)],
            ],
        )
        .unwrap();
        assert!(repair_key("r", &bad, &["k"], Some("w")).is_err());
    }
}
