//! U-relations (Definition 2.2).
//!
//! A U-relation `U[D; T; B]` has ws-descriptor columns `D`, tuple-id
//! columns `T` and value columns `B`. This module keeps a *typed* view
//! ([`URelation`] / [`URow`]) for algorithms (reduction, normalization,
//! certain answers) and converts losslessly to the *purely relational*
//! encoding — plain `(Var, Rng)` column pairs — that the translated
//! queries run on ([`URelation::encode`] / [`URelation::decode`]).

use crate::descriptor::WsDescriptor;
use crate::error::{Error, Result};
use crate::world::{Valuation, Var, WorldTable};
use std::fmt;
use urel_relalg::{Relation, Value};

/// Sentinel for an absent tuple id: the union translation pads the other
/// side's tuple-id columns with `Null`, which decodes to this value
/// (Section 3: "add new (empty) columns T₂ to U₁ and T₁ to U₂").
pub const NULL_TID: i64 = i64::MIN;

/// One U-relation row: `(descriptor, tuple ids, values)`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct URow {
    /// The ws-descriptor guarding this row.
    pub desc: WsDescriptor,
    /// One id per tuple-id column (joins concatenate these).
    pub tids: Box<[i64]>,
    /// One value per value column.
    pub vals: Box<[Value]>,
}

impl URow {
    /// Convenience constructor.
    pub fn new(desc: WsDescriptor, tids: Vec<i64>, vals: Vec<Value>) -> Self {
        URow {
            desc,
            tids: tids.into_boxed_slice(),
            vals: vals.into_boxed_slice(),
        }
    }
}

/// A typed U-relation.
#[derive(Clone, Debug, PartialEq)]
pub struct URelation {
    /// Relation name (doubles as the catalog key for its encoding).
    pub name: String,
    desc_arity: usize,
    tid_cols: Vec<String>,
    value_cols: Vec<String>,
    rows: Vec<URow>,
}

impl URelation {
    /// Empty U-relation with one tuple-id column `tid` (the shape of base
    /// vertical partitions; query results may have more).
    pub fn partition(
        name: impl Into<String>,
        value_cols: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        URelation {
            name: name.into(),
            desc_arity: 0,
            tid_cols: vec!["tid".into()],
            value_cols: value_cols.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Fully general constructor.
    pub fn new(name: impl Into<String>, tid_cols: Vec<String>, value_cols: Vec<String>) -> Self {
        URelation {
            name: name.into(),
            desc_arity: 0,
            tid_cols,
            value_cols,
            rows: Vec::new(),
        }
    }

    /// Append a row; arities are checked, the descriptor arity grows to
    /// fit.
    pub fn push(&mut self, row: URow) -> Result<()> {
        if row.tids.len() != self.tid_cols.len() {
            return Err(Error::InvalidDatabase(format!(
                "{}: row has {} tuple ids, expected {}",
                self.name,
                row.tids.len(),
                self.tid_cols.len()
            )));
        }
        if row.vals.len() != self.value_cols.len() {
            return Err(Error::InvalidDatabase(format!(
                "{}: row has {} values, expected {}",
                self.name,
                row.vals.len(),
                self.value_cols.len()
            )));
        }
        self.desc_arity = self.desc_arity.max(row.desc.len());
        self.rows.push(row);
        Ok(())
    }

    /// Shorthand: push `(descriptor, single tid, values)`.
    pub fn push_simple(&mut self, desc: WsDescriptor, tid: i64, vals: Vec<Value>) -> Result<()> {
        self.push(URow::new(desc, vec![tid], vals))
    }

    /// The rows.
    pub fn rows(&self) -> &[URow] {
        &self.rows
    }

    /// Mutable rows (used by reduction).
    pub fn rows_mut(&mut self) -> &mut Vec<URow> {
        &mut self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Descriptor columns in the relational encoding.
    pub fn desc_arity(&self) -> usize {
        self.desc_arity
    }

    /// Tuple-id column names.
    pub fn tid_cols(&self) -> &[String] {
        &self.tid_cols
    }

    /// Value column names.
    pub fn value_cols(&self) -> &[String] {
        &self.value_cols
    }

    /// Maximum descriptor size actually used (= `desc_arity`).
    pub fn max_descriptor_size(&self) -> usize {
        self.rows.iter().map(|r| r.desc.len()).max().unwrap_or(0)
    }

    /// A U-relation is *normalized* when every descriptor has size ≤ 1
    /// (Definition 4.1).
    pub fn is_normalized(&self) -> bool {
        self.rows.iter().all(|r| r.desc.len() <= 1)
    }

    /// Representation size in bytes: descriptor pairs (8 bytes each of
    /// var/rng), tuple ids, and value payloads — the Figure 9 accounting.
    pub fn size_bytes(&self) -> usize {
        let desc_bytes = self.desc_arity * 16;
        self.rows
            .iter()
            .map(|r| {
                desc_bytes + r.tids.len() * 8 + r.vals.iter().map(Value::size_bytes).sum::<usize>()
            })
            .sum()
    }

    /// The tuples of this U-relation present in the world `f`: rows whose
    /// descriptor `f` extends, projected to the value columns.
    pub fn tuples_in_world(&self, w: &WorldTable, f: &Valuation) -> Relation {
        let mut rel = Relation::empty(urel_relalg::Schema::named(&self.value_cols));
        for r in &self.rows {
            if w.extends(f, &r.desc) {
                rel.push(r.vals.to_vec()).expect("arity fixed");
            }
        }
        rel.dedup_in_place();
        rel
    }

    /// Distinct value tuples across all rows — the `poss` projection.
    pub fn possible_tuples(&self) -> Relation {
        let mut rel = Relation::empty(urel_relalg::Schema::named(&self.value_cols));
        for r in &self.rows {
            rel.push(r.vals.to_vec()).expect("arity fixed");
        }
        rel.dedup_in_place();
        rel
    }

    /// Encode into the purely relational layout:
    /// `d0_var, d0_rng, …, d{k-1}_var, d{k-1}_rng, <tid cols>, <value cols>`.
    pub fn encode(&self) -> Relation {
        let mut names: Vec<String> = Vec::new();
        for i in 0..self.desc_arity {
            names.push(format!("d{i}_var"));
            names.push(format!("d{i}_rng"));
        }
        names.extend(self.tid_cols.iter().cloned());
        names.extend(self.value_cols.iter().cloned());
        let arity = names.len();
        let rows: Vec<Vec<Value>> = self
            .rows
            .iter()
            .map(|r| {
                let mut row: Vec<Value> = Vec::with_capacity(arity);
                for (v, val) in r.desc.encode_padded(self.desc_arity) {
                    row.push(Value::Int(v.0 as i64));
                    row.push(Value::Int(val as i64));
                }
                row.extend(r.tids.iter().map(|&t| Value::Int(t)));
                row.extend(r.vals.iter().cloned());
                row
            })
            .collect();
        Relation::from_rows(names, rows).expect("consistent encode")
    }

    /// Decode a relational encoding produced by [`URelation::encode`] or
    /// by a translated query plan. `desc_arity` and `n_tids` fix the
    /// column-group boundaries; names are taken from the relation schema.
    pub fn decode(
        name: impl Into<String>,
        rel: &Relation,
        desc_arity: usize,
        n_tids: usize,
    ) -> Result<URelation> {
        let arity = rel.schema().arity();
        if arity < 2 * desc_arity + n_tids {
            return Err(Error::InvalidDatabase(format!(
                "relation arity {arity} too small for {desc_arity} descriptor pairs + {n_tids} tids"
            )));
        }
        let cols = rel.schema().columns();
        let tid_cols: Vec<String> = cols[2 * desc_arity..2 * desc_arity + n_tids]
            .iter()
            .map(|c| c.to_string())
            .collect();
        let value_cols: Vec<String> = cols[2 * desc_arity + n_tids..]
            .iter()
            .map(|c| c.to_string())
            .collect();
        let mut out = URelation::new(name, tid_cols, value_cols);
        for row in rel.rows() {
            let mut pairs = Vec::with_capacity(desc_arity);
            for i in 0..desc_arity {
                let v = row[2 * i].as_int().ok_or_else(|| {
                    Error::InvalidDatabase("descriptor var is not an integer".into())
                })?;
                let val = row[2 * i + 1].as_int().ok_or_else(|| {
                    Error::InvalidDatabase("descriptor rng is not an integer".into())
                })?;
                pairs.push((Var(v as u32), val as u64));
            }
            let desc = WsDescriptor::decode(pairs)?;
            let tids: Vec<i64> = row[2 * desc_arity..2 * desc_arity + n_tids]
                .iter()
                .map(|v| {
                    if v.is_null() {
                        // Union-padded tuple-id column (see [`NULL_TID`]).
                        return Ok(NULL_TID);
                    }
                    v.as_int()
                        .ok_or_else(|| Error::InvalidDatabase("tuple id is not an integer".into()))
                })
                .collect::<Result<_>>()?;
            let vals: Vec<Value> = row[2 * desc_arity + n_tids..].to_vec();
            out.push(URow::new(desc, tids, vals))?;
        }
        Ok(out)
    }
}

impl fmt::Display for URelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}[D({}); {}; {}]",
            self.name,
            self.desc_arity,
            self.tid_cols.join(", "),
            self.value_cols.join(", ")
        )?;
        for r in &self.rows {
            write!(f, "  {} | ", r.desc)?;
            for t in r.tids.iter() {
                write!(f, "t{t} ")?;
            }
            write!(f, "|")?;
            for v in r.vals.iter() {
                write!(f, " {v}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::TOP;

    fn sample() -> URelation {
        let mut u = URelation::partition("u_r_a", ["a"]);
        u.push_simple(WsDescriptor::empty(), 1, vec![Value::str("x")])
            .unwrap();
        u.push_simple(WsDescriptor::singleton(Var(1), 1), 2, vec![Value::str("y")])
            .unwrap();
        u.push_simple(
            WsDescriptor::from_pairs([(Var(1), 2), (Var(2), 1)]).unwrap(),
            2,
            vec![Value::str("z")],
        )
        .unwrap();
        u
    }

    #[test]
    fn arity_tracking() {
        let u = sample();
        assert_eq!(u.desc_arity(), 2);
        assert_eq!(u.max_descriptor_size(), 2);
        assert!(!u.is_normalized());
    }

    #[test]
    fn push_checks_arities() {
        let mut u = URelation::partition("u", ["a"]);
        assert!(u
            .push(URow::new(
                WsDescriptor::empty(),
                vec![1, 2],
                vec![Value::Int(1)]
            ))
            .is_err());
        assert!(u
            .push(URow::new(WsDescriptor::empty(), vec![1], vec![]))
            .is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let u = sample();
        let rel = u.encode();
        assert_eq!(
            rel.schema().to_string(),
            "d0_var, d0_rng, d1_var, d1_rng, tid, a"
        );
        let back = URelation::decode("u_r_a", &rel, 2, 1).unwrap();
        assert_eq!(back.rows(), u.rows());
        assert_eq!(back.value_cols(), u.value_cols());
    }

    #[test]
    fn encode_pads_with_top_and_repeats() {
        let u = sample();
        let rel = u.encode();
        // Row 0 had an empty descriptor: both pairs are ⊤ ↦ 0.
        let r0 = &rel.rows()[0];
        assert_eq!(r0[0], Value::Int(TOP.0 as i64));
        assert_eq!(r0[2], Value::Int(TOP.0 as i64));
        // Row 1 had size 1: second pair repeats the first.
        let r1 = &rel.rows()[1];
        assert_eq!(r1[0], r1[2]);
        assert_eq!(r1[1], r1[3]);
    }

    #[test]
    fn world_restriction() {
        let mut w = WorldTable::new();
        w.add_var(Var(1), vec![1, 2]).unwrap();
        w.add_var(Var(2), vec![1, 2]).unwrap();
        let u = sample();
        let f: Valuation = [(Var(1), 1), (Var(2), 1)].into_iter().collect();
        let in_world = u.tuples_in_world(&w, &f);
        // Row 0 (always) + row 1 (x1 ↦ 1); row 2 requires x1 ↦ 2.
        assert_eq!(in_world.len(), 2);
        let f2: Valuation = [(Var(1), 2), (Var(2), 1)].into_iter().collect();
        assert_eq!(u.tuples_in_world(&w, &f2).len(), 2); // x and z
    }

    #[test]
    fn possible_tuples_dedup() {
        let mut u = URelation::partition("u", ["a"]);
        u.push_simple(WsDescriptor::singleton(Var(1), 1), 1, vec![Value::Int(5)])
            .unwrap();
        u.push_simple(WsDescriptor::singleton(Var(1), 2), 1, vec![Value::Int(5)])
            .unwrap();
        assert_eq!(u.possible_tuples().len(), 1);
    }

    #[test]
    fn size_accounting() {
        let u = sample();
        // 3 rows × (2 desc pairs × 16 + 8 tid + 1 byte string)
        assert_eq!(u.size_bytes(), 3 * (32 + 8 + 1));
    }
}
