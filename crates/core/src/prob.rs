//! Probabilistic U-relations (Section 7).
//!
//! The paper's extension: add a probability column to `W` (variables are
//! independent; values of one variable are mutually exclusive) and compute
//! the *confidence* of an answer tuple — the probability mass of the
//! worlds in which it appears, i.e. `P(⋃ᵢ worlds(dᵢ))` over the tuple's
//! ws-descriptors. Exact computation is `#P`-hard in general; this module
//! provides an exact Shannon-expansion (variable elimination) algorithm
//! plus a Monte-Carlo estimator, matching the paper's "practical
//! approximation techniques" research note.

use crate::descriptor::WsDescriptor;
use crate::error::Result;
use crate::urelation::URelation;
use crate::world::{Var, WorldTable, TOP};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use urel_relalg::Value;

/// Exact probability of the union of the descriptors' world-sets.
///
/// Shannon expansion: pick the most frequent variable, branch over its
/// domain, condition the descriptor set on each value, and recurse.
/// Worst-case exponential in the number of distinct variables (inherent);
/// linear when descriptors are pairwise variable-disjoint after the first
/// split, which is the common shape of query results.
pub fn confidence(descs: &[WsDescriptor], w: &WorldTable) -> Result<f64> {
    // ⊤-only descriptors count as empty.
    let cleaned: Vec<WsDescriptor> = descs
        .iter()
        .map(|d| WsDescriptor::decode(d.iter().copied()))
        .collect::<Result<_>>()?;
    for d in &cleaned {
        w.check_descriptor(d)?;
    }
    Ok(shannon(&cleaned, w))
}

fn shannon(descs: &[WsDescriptor], w: &WorldTable) -> f64 {
    if descs.iter().any(WsDescriptor::is_empty) {
        return 1.0;
    }
    if descs.is_empty() {
        return 0.0;
    }
    // Decompose into variable-connected components: descriptor groups
    // over disjoint variables are independent, so
    // P(⋃ all) = 1 − ∏ᵢ (1 − P(⋃ groupᵢ)). This turns the exponential
    // expansion into a product of small expansions whenever query results
    // mix unrelated variables — the common case.
    let groups = connected_groups(descs);
    if groups.len() > 1 {
        let mut miss = 1.0;
        for g in groups {
            let sub: Vec<WsDescriptor> = g.into_iter().cloned().collect();
            miss *= 1.0 - shannon_connected(&sub, w);
        }
        return 1.0 - miss;
    }
    shannon_connected(descs, w)
}

/// Partition descriptors into groups connected by shared variables.
fn connected_groups<'a>(descs: &'a [WsDescriptor]) -> Vec<Vec<&'a WsDescriptor>> {
    let mut groups: Vec<(std::collections::BTreeSet<Var>, Vec<&'a WsDescriptor>)> = Vec::new();
    for d in descs {
        let vars: std::collections::BTreeSet<Var> = d.vars().collect();
        // Collect all existing groups this descriptor touches.
        let mut touched: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter(|(_, (gv, _))| !gv.is_disjoint(&vars))
            .map(|(i, _)| i)
            .collect();
        match touched.len() {
            0 => groups.push((vars, vec![d])),
            _ => {
                // Merge all touched groups into the first.
                let keep = touched.remove(0);
                for &i in touched.iter().rev() {
                    let (gv, gd) = groups.remove(i);
                    groups[keep].0.extend(gv);
                    groups[keep].1.extend(gd);
                }
                groups[keep].0.extend(vars);
                groups[keep].1.push(d);
            }
        }
    }
    groups.into_iter().map(|(_, g)| g).collect()
}

fn shannon_connected(descs: &[WsDescriptor], w: &WorldTable) -> f64 {
    if descs.iter().any(WsDescriptor::is_empty) {
        return 1.0;
    }
    if descs.is_empty() {
        return 0.0;
    }
    // Most frequent variable first keeps the branching shallow.
    let mut freq: BTreeMap<Var, usize> = BTreeMap::new();
    for d in descs {
        for v in d.vars() {
            *freq.entry(v).or_default() += 1;
        }
    }
    let (&x, _) = freq
        .iter()
        .max_by_key(|(_, c)| **c)
        .expect("non-empty descs");
    let dom = w.domain(x).expect("checked").to_vec();
    let mut total = 0.0;
    for val in dom {
        let p = w.prob(x, val).expect("checked");
        if p == 0.0 {
            continue;
        }
        // Condition on x ↦ val: drop incompatible descriptors, remove x
        // from the rest.
        let mut sub = Vec::with_capacity(descs.len());
        for d in descs {
            match d.get(x) {
                Some(v) if v != val => continue,
                _ => {}
            }
            let rest: Vec<(Var, u64)> = d.iter().copied().filter(|&(v, _)| v != x).collect();
            sub.push(WsDescriptor::from_pairs(rest).expect("subset stays consistent"));
        }
        total += p * shannon(&sub, w);
    }
    total
}

/// Does the union of the descriptors cover *every* world? (Used by the
/// exact certain-answer computation: a tuple is certain iff its
/// descriptors' union has full coverage.) Exact, via the same expansion
/// with uniform probabilities replaced by world counting.
pub fn covers_all_worlds(descs: &[WsDescriptor], w: &WorldTable) -> Result<bool> {
    let cleaned: Vec<WsDescriptor> = descs
        .iter()
        .map(|d| WsDescriptor::decode(d.iter().copied()))
        .collect::<Result<_>>()?;
    for d in &cleaned {
        w.check_descriptor(d)?;
    }
    Ok(covers(&cleaned, w))
}

fn covers(descs: &[WsDescriptor], w: &WorldTable) -> bool {
    if descs.iter().any(WsDescriptor::is_empty) {
        return true;
    }
    if descs.is_empty() {
        return false;
    }
    let mut freq: BTreeMap<Var, usize> = BTreeMap::new();
    for d in descs {
        for v in d.vars() {
            *freq.entry(v).or_default() += 1;
        }
    }
    let (&x, _) = freq.iter().max_by_key(|(_, c)| **c).expect("non-empty");
    let dom = w.domain(x).expect("checked").to_vec();
    dom.into_iter().all(|val| {
        let mut sub = Vec::with_capacity(descs.len());
        for d in descs {
            match d.get(x) {
                Some(v) if v != val => continue,
                _ => {}
            }
            let rest: Vec<(Var, u64)> = d.iter().copied().filter(|&(v, _)| v != x).collect();
            sub.push(WsDescriptor::from_pairs(rest).expect("subset"));
        }
        covers(&sub, w)
    })
}

/// Monte-Carlo confidence estimate: sample `samples` worlds from the
/// (possibly non-uniform) world distribution and count how often some
/// descriptor is satisfied. Deterministic given `seed`.
pub fn confidence_monte_carlo(
    descs: &[WsDescriptor],
    w: &WorldTable,
    samples: usize,
    seed: u64,
) -> Result<f64> {
    for d in descs {
        w.check_descriptor(d)?;
    }
    // Only variables that occur in some descriptor matter.
    let mut vars: Vec<Var> = descs.iter().flat_map(|d| d.vars()).collect();
    vars.sort_unstable();
    vars.dedup();
    vars.retain(|&v| v != TOP);
    if descs.iter().any(WsDescriptor::is_empty) {
        return Ok(1.0);
    }
    if descs.is_empty() || samples == 0 {
        return Ok(0.0);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    let mut assignment: BTreeMap<Var, u64> = BTreeMap::new();
    for _ in 0..samples {
        assignment.clear();
        for &v in &vars {
            let dom = w.domain(v)?;
            let val = if w.is_probabilistic() {
                // Inverse-CDF sampling over the domain.
                let mut u: f64 = rng.gen();
                let mut chosen = dom[dom.len() - 1];
                for &d in dom {
                    let p = w.prob(v, d)?;
                    if u < p {
                        chosen = d;
                        break;
                    }
                    u -= p;
                }
                chosen
            } else {
                dom[rng.gen_range(0..dom.len())]
            };
            assignment.insert(v, val);
        }
        let hit = descs.iter().any(|d| {
            d.iter()
                .all(|&(v, val)| v == TOP && val == 0 || assignment.get(&v) == Some(&val))
        });
        if hit {
            hits += 1;
        }
    }
    Ok(hits as f64 / samples as f64)
}

/// How tuple confidences are computed.
///
/// `Exact` runs the Shannon-expansion variable elimination — worst-case
/// exponential in the number of connected variables, precise to float
/// rounding. `MonteCarlo` samples worlds instead: by Hoeffding's
/// inequality the estimate is within `ε = sqrt(ln(2/δ) / (2·samples))`
/// of the true probability with confidence `1 − δ`, independent of how
/// entangled the descriptors are — the paper's "practical approximation
/// techniques" knob for big instances.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfidenceMethod {
    /// Exact variable elimination ([`confidence`]).
    Exact,
    /// Monte-Carlo estimation ([`confidence_monte_carlo`]); deterministic
    /// given the seed.
    MonteCarlo {
        /// Number of sampled worlds.
        samples: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl ConfidenceMethod {
    /// Confidence of one descriptor union under this method. A
    /// zero-sample Monte-Carlo request is rejected (it would estimate
    /// nothing while `error_bound` diverges).
    pub fn confidence(&self, descs: &[WsDescriptor], w: &WorldTable) -> Result<f64> {
        match *self {
            ConfidenceMethod::Exact => confidence(descs, w),
            ConfidenceMethod::MonteCarlo { samples: 0, .. } => {
                Err(crate::error::Error::InvalidQuery(
                    "Monte-Carlo confidence needs at least one sample".into(),
                ))
            }
            ConfidenceMethod::MonteCarlo { samples, seed } => {
                confidence_monte_carlo(descs, w, samples, seed)
            }
        }
    }

    /// The Hoeffding half-width `ε` such that a Monte-Carlo estimate is
    /// within `ε` of the exact value with probability `1 − δ`. `Exact`
    /// reports 0 (numerically tight).
    pub fn error_bound(&self, delta: f64) -> f64 {
        match *self {
            ConfidenceMethod::Exact => 0.0,
            ConfidenceMethod::MonteCarlo { samples, .. } => {
                ((2.0 / delta).ln() / (2.0 * samples as f64)).sqrt()
            }
        }
    }
}

/// Probability that the union of the descriptors' world-sets covers a
/// randomly drawn world — the *certain* side of confidence: a tuple is
/// certain iff its coverage probability is exactly 1
/// ([`covers_all_worlds`] decides that combinatorially). Numerically it
/// coincides with [`ConfidenceMethod::confidence`], but the contract
/// differs: the Monte-Carlo estimate carries the same Hoeffding
/// half-width `ε(δ)` as the `possible` side, so an estimate `≥ 1 − ε`
/// certifies full coverage with confidence `1 − δ` — the knob for
/// certain answers on instances where the exact expansion blows up.
pub fn coverage_probability(
    descs: &[WsDescriptor],
    w: &WorldTable,
    method: ConfidenceMethod,
) -> Result<f64> {
    method.confidence(descs, w)
}

/// Confidence of every distinct answer tuple of a result U-relation:
/// groups rows by value tuple and computes the union probability of each
/// group's descriptors.
pub fn tuple_confidences(u: &URelation, w: &WorldTable) -> Result<Vec<(Vec<Value>, f64)>> {
    tuple_confidences_with(u, w, ConfidenceMethod::Exact)
}

/// [`tuple_confidences`] with an explicit computation method (exact
/// variable elimination or seeded Monte-Carlo estimation).
pub fn tuple_confidences_with(
    u: &URelation,
    w: &WorldTable,
    method: ConfidenceMethod,
) -> Result<Vec<(Vec<Value>, f64)>> {
    let mut groups: BTreeMap<Vec<Value>, Vec<WsDescriptor>> = BTreeMap::new();
    for row in u.rows() {
        groups
            .entry(row.vals.to_vec())
            .or_default()
            .push(row.desc.clone());
    }
    groups
        .into_iter()
        .map(|(vals, descs)| Ok((vals, method.confidence(&descs, w)?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    fn w2() -> WorldTable {
        let mut w = WorldTable::new();
        w.add_var(Var(1), vec![0, 1]).unwrap();
        w.add_var(Var(2), vec![0, 1]).unwrap();
        w.add_var(Var(3), vec![0, 1, 2, 3]).unwrap();
        w
    }

    fn d(pairs: &[(u32, u64)]) -> WsDescriptor {
        WsDescriptor::from_pairs(pairs.iter().map(|&(v, x)| (Var(v), x))).unwrap()
    }

    /// Brute-force reference: enumerate all worlds.
    fn brute(descs: &[WsDescriptor], w: &WorldTable) -> f64 {
        let mut total = 0.0;
        for f in w.worlds(100_000).unwrap() {
            if descs.iter().any(|dd| w.extends(&f, dd)) {
                total += w.world_prob(&f).unwrap();
            }
        }
        total
    }

    #[test]
    fn exact_matches_brute_force() {
        let w = w2();
        let cases: Vec<Vec<WsDescriptor>> = vec![
            vec![],
            vec![WsDescriptor::empty()],
            vec![d(&[(1, 0)])],
            vec![d(&[(1, 0)]), d(&[(1, 1)])],
            vec![d(&[(1, 0)]), d(&[(2, 1)])],
            vec![d(&[(1, 0), (2, 0)]), d(&[(1, 1), (2, 1)])],
            vec![d(&[(3, 0)]), d(&[(3, 1)]), d(&[(3, 2)])],
            vec![d(&[(1, 0), (3, 2)]), d(&[(2, 1)]), d(&[(1, 1), (2, 0)])],
        ];
        for descs in cases {
            let exact = confidence(&descs, &w).unwrap();
            let reference = brute(&descs, &w);
            assert!(
                (exact - reference).abs() < 1e-12,
                "descs {descs:?}: {exact} vs {reference}"
            );
        }
    }

    #[test]
    fn exact_with_nonuniform_probabilities() {
        let mut w = w2();
        w.set_probabilities(Var(1), vec![0.9, 0.1]).unwrap();
        w.set_probabilities(Var(2), vec![0.3, 0.7]).unwrap();
        let descs = vec![d(&[(1, 0), (2, 0)]), d(&[(2, 1)])];
        let exact = confidence(&descs, &w).unwrap();
        let reference = brute(&descs, &w);
        assert!((exact - reference).abs() < 1e-12);
        // P = 0.9·0.3 + 0.7 = 0.97.
        assert!((exact - 0.97).abs() < 1e-12);
    }

    #[test]
    fn coverage_detection() {
        let w = w2();
        assert!(covers_all_worlds(&[WsDescriptor::empty()], &w).unwrap());
        assert!(covers_all_worlds(&[d(&[(1, 0)]), d(&[(1, 1)])], &w).unwrap());
        assert!(!covers_all_worlds(&[d(&[(1, 0)]), d(&[(2, 1)])], &w).unwrap());
        assert!(!covers_all_worlds(&[], &w).unwrap());
        // Cross-variable cover: (1,0) ∪ (1,1)&(2,0) ∪ (1,1)&(2,1).
        assert!(covers_all_worlds(
            &[d(&[(1, 0)]), d(&[(1, 1), (2, 0)]), d(&[(1, 1), (2, 1)])],
            &w
        )
        .unwrap());
    }

    #[test]
    fn monte_carlo_converges() {
        let w = w2();
        let descs = vec![d(&[(1, 0)]), d(&[(2, 1)])]; // P = 0.75
        let est = confidence_monte_carlo(&descs, &w, 20_000, 42).unwrap();
        assert!((est - 0.75).abs() < 0.02, "estimate {est}");
        // Determinism.
        let est2 = confidence_monte_carlo(&descs, &w, 20_000, 42).unwrap();
        assert_eq!(est, est2);
        // Edge cases.
        assert_eq!(confidence_monte_carlo(&[], &w, 100, 1).unwrap(), 0.0);
        assert_eq!(
            confidence_monte_carlo(&[WsDescriptor::empty()], &w, 100, 1).unwrap(),
            1.0
        );
    }

    #[test]
    fn monte_carlo_weighted() {
        let mut w = w2();
        w.set_probabilities(Var(1), vec![0.9, 0.1]).unwrap();
        let est = confidence_monte_carlo(&[d(&[(1, 0)])], &w, 20_000, 7).unwrap();
        assert!((est - 0.9).abs() < 0.02, "estimate {est}");
    }

    #[test]
    fn tuple_confidence_groups_rows() {
        let w = w2();
        let mut u = URelation::partition("u", ["a"]);
        u.push_simple(d(&[(1, 0)]), 1, vec![Value::Int(7)]).unwrap();
        u.push_simple(d(&[(1, 1)]), 2, vec![Value::Int(7)]).unwrap();
        u.push_simple(d(&[(2, 0)]), 3, vec![Value::Int(8)]).unwrap();
        let confs = tuple_confidences(&u, &w).unwrap();
        assert_eq!(confs.len(), 2);
        assert!((confs[0].1 - 1.0).abs() < 1e-12); // value 7 always present
        assert!((confs[1].1 - 0.5).abs() < 1e-12); // value 8 half the time
    }

    #[test]
    fn descriptors_are_validated() {
        let w = w2();
        assert!(matches!(
            confidence(&[d(&[(9, 0)])], &w),
            Err(Error::UnknownWorld(_))
        ));
    }

    #[test]
    fn component_decomposition_handles_many_independent_vars() {
        // 40 binary variables, one singleton descriptor each: a naive
        // expansion would branch 2^40 times; the decomposition computes
        // 1 − (1/2)^40 as a product in microseconds.
        let mut w = WorldTable::new();
        let mut descs = Vec::new();
        for i in 1..=40u32 {
            w.add_var(Var(i), vec![0, 1]).unwrap();
            descs.push(WsDescriptor::singleton(Var(i), 0));
        }
        let p = confidence(&descs, &w).unwrap();
        let want = 1.0 - 0.5f64.powi(40);
        assert!((p - want).abs() < 1e-12, "{p} vs {want}");
    }

    #[test]
    fn decomposition_groups_by_shared_variables() {
        // Two chains {1-2} and {3}, plus a bridging descriptor that links
        // nothing extra — verified against brute force.
        let w = w2();
        let descs = vec![d(&[(1, 0), (2, 0)]), d(&[(2, 1)]), d(&[(3, 2)])];
        let exact = confidence(&descs, &w).unwrap();
        let reference = brute(&descs, &w);
        assert!((exact - reference).abs() < 1e-12);
    }
}
