//! The logical query language: positive relational algebra + `poss`
//! (Section 3), and its *possible-worlds* reference semantics.
//!
//! [`oracle_possible`] / [`oracle_certain`] evaluate a query by literally
//! enumerating every world and running the query in each — exponential,
//! but the ground truth that the efficient translation of
//! [`crate::translate`] is tested against.

use crate::error::{Error, Result};
use crate::udb::UDatabase;
use crate::world::Valuation;
use std::collections::BTreeSet;
use urel_relalg::{ColRef, Expr, Relation, Row, Schema};

/// A positive relational algebra query with `poss`, over the logical
/// schema of a [`UDatabase`].
#[derive(Clone, Debug, PartialEq)]
pub enum UQuery {
    /// A logical relation, optionally aliased (required for self-joins;
    /// attributes are then referenced as `alias.attr`).
    Table { rel: String, alias: Option<String> },
    /// σ — predicate over value attributes.
    Select { input: Box<UQuery>, pred: Expr },
    /// π — keep the listed attributes.
    Project {
        input: Box<UQuery>,
        attrs: Vec<String>,
    },
    /// ⋈ — theta-join; the two sides must have disjoint attribute names.
    Join {
        left: Box<UQuery>,
        right: Box<UQuery>,
        pred: Expr,
    },
    /// ∪ — union of two queries with equal attribute names.
    Union {
        left: Box<UQuery>,
        right: Box<UQuery>,
    },
    /// `poss` — close the possible-worlds semantics: the set of tuples
    /// possible in *some* world.
    Poss { input: Box<UQuery> },
}

/// Leaf constructor.
pub fn table(rel: impl Into<String>) -> UQuery {
    UQuery::Table {
        rel: rel.into(),
        alias: None,
    }
}

/// Aliased leaf constructor (`R AS s1`).
pub fn table_as(rel: impl Into<String>, alias: impl Into<String>) -> UQuery {
    UQuery::Table {
        rel: rel.into(),
        alias: Some(alias.into()),
    }
}

impl UQuery {
    /// σ builder.
    pub fn select(self, pred: Expr) -> UQuery {
        UQuery::Select {
            input: Box::new(self),
            pred,
        }
    }

    /// π builder.
    pub fn project<S: Into<String>>(self, attrs: impl IntoIterator<Item = S>) -> UQuery {
        UQuery::Project {
            input: Box::new(self),
            attrs: attrs.into_iter().map(Into::into).collect(),
        }
    }

    /// ⋈ builder.
    pub fn join(self, right: UQuery, pred: Expr) -> UQuery {
        UQuery::Join {
            left: Box::new(self),
            right: Box::new(right),
            pred,
        }
    }

    /// ∪ builder.
    pub fn union(self, right: UQuery) -> UQuery {
        UQuery::Union {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// `poss` builder.
    pub fn poss(self) -> UQuery {
        UQuery::Poss {
            input: Box::new(self),
        }
    }

    /// The output attributes (display identities) of this query.
    pub fn attrs(&self, udb: &UDatabase) -> Result<Vec<ColRef>> {
        match self {
            UQuery::Table { rel, alias } => Ok(udb
                .attrs(rel)?
                .iter()
                .map(|a| match alias {
                    Some(q) => ColRef::qualified(q, a),
                    None => ColRef::new(a),
                })
                .collect()),
            UQuery::Select { input, .. } | UQuery::Poss { input } => input.attrs(udb),
            UQuery::Project { input, attrs } => {
                let inner = input.attrs(udb)?;
                attrs
                    .iter()
                    .map(|a| {
                        let r = ColRef::parse(a);
                        let matches: Vec<&ColRef> =
                            inner.iter().filter(|c| c.matches(&r)).collect();
                        match matches.len() {
                            1 => Ok(matches[0].clone()),
                            0 => Err(Error::InvalidQuery(format!(
                                "projection attribute `{a}` not found"
                            ))),
                            _ => Err(Error::InvalidQuery(format!(
                                "projection attribute `{a}` is ambiguous"
                            ))),
                        }
                    })
                    .collect()
            }
            UQuery::Join { left, right, .. } => {
                let mut l = left.attrs(udb)?;
                let r = right.attrs(udb)?;
                for c in &r {
                    if l.iter().any(|d| d == c) {
                        return Err(Error::InvalidQuery(format!(
                            "join sides share attribute `{c}`; alias one side"
                        )));
                    }
                }
                l.extend(r);
                Ok(l)
            }
            UQuery::Union { left, right } => {
                let l = left.attrs(udb)?;
                let r = right.attrs(udb)?;
                if l.len() != r.len() || l.iter().zip(&r).any(|(a, b)| a.name != b.name) {
                    return Err(Error::InvalidQuery(
                        "union sides must have equal attribute names".into(),
                    ));
                }
                Ok(l)
            }
        }
    }

    /// Count the relational operators (leaves excluded) — used to verify
    /// the parsimonious-translation claim.
    pub fn op_count(&self) -> usize {
        match self {
            UQuery::Table { .. } => 0,
            UQuery::Select { input, .. }
            | UQuery::Project { input, .. }
            | UQuery::Poss { input } => 1 + input.op_count(),
            UQuery::Join { left, right, .. } | UQuery::Union { left, right } => {
                1 + left.op_count() + right.op_count()
            }
        }
    }

    /// Number of ⋈ operators in the query.
    pub fn join_ops(&self) -> usize {
        match self {
            UQuery::Table { .. } => 0,
            UQuery::Select { input, .. }
            | UQuery::Project { input, .. }
            | UQuery::Poss { input } => input.join_ops(),
            UQuery::Join { left, right, .. } => 1 + left.join_ops() + right.join_ops(),
            UQuery::Union { left, right } => left.join_ops() + right.join_ops(),
        }
    }
}

/// Evaluate a query inside one world, per the classical semantics.
/// `limit` bounds the world enumeration triggered by nested `poss`.
pub fn oracle_eval(q: &UQuery, udb: &UDatabase, f: &Valuation, limit: usize) -> Result<Relation> {
    match q {
        UQuery::Table { rel, alias } => {
            let inst = udb.instantiate(f)?;
            let r = inst
                .get(rel.as_str())
                .ok_or_else(|| Error::InvalidQuery(format!("unknown relation `{rel}`")))?
                .clone();
            Ok(match alias {
                Some(a) => {
                    let s = r.schema().qualify(a);
                    r.with_schema(s)?
                }
                None => r,
            })
        }
        UQuery::Select { input, pred } => {
            let rel = oracle_eval(input, udb, f, limit)?;
            let compiled = pred.compile(rel.schema())?;
            let rows: Vec<Row> = rel
                .rows()
                .iter()
                .filter(|r| compiled.eval_bool(r))
                .cloned()
                .collect();
            Ok(Relation::new(rel.schema().clone(), rows)?)
        }
        UQuery::Project { input, attrs } => {
            let rel = oracle_eval(input, udb, f, limit)?;
            let out_attrs = q.attrs(udb)?;
            let idx: Vec<usize> = attrs
                .iter()
                .map(|a| rel.schema().resolve_name(a).map_err(Error::from))
                .collect::<Result<_>>()?;
            let mut out = Relation::empty(Schema::new(out_attrs));
            for r in rel.rows() {
                out.push(idx.iter().map(|&i| r[i].clone()).collect())?;
            }
            out.dedup_in_place();
            Ok(out)
        }
        UQuery::Join { left, right, pred } => {
            let l = oracle_eval(left, udb, f, limit)?;
            let r = oracle_eval(right, udb, f, limit)?;
            let schema = l.schema().concat(r.schema());
            let compiled = pred.compile(&schema)?;
            let mut out = Relation::empty(schema);
            for lr in l.rows() {
                for rr in r.rows() {
                    if compiled.eval_bool_pair(lr, rr) {
                        let mut row = lr.to_vec();
                        row.extend(rr.iter().cloned());
                        out.push(row)?;
                    }
                }
            }
            Ok(out)
        }
        UQuery::Union { left, right } => {
            let l = oracle_eval(left, udb, f, limit)?;
            let r = oracle_eval(right, udb, f, limit)?;
            let mut out = Relation::empty(l.schema().clone());
            for row in l.rows().iter().chain(r.rows()) {
                out.push(row.to_vec())?;
            }
            out.dedup_in_place();
            Ok(out)
        }
        UQuery::Poss { input } => {
            // `poss` closes the world semantics: its value is the same
            // certain relation in every world.
            oracle_possible(input, udb, limit)
        }
    }
}

/// Ground truth for `poss(Q)`: the union of `Q`'s answers over all worlds.
pub fn oracle_possible(q: &UQuery, udb: &UDatabase, limit: usize) -> Result<Relation> {
    let attrs = q.attrs(udb)?;
    let mut out = Relation::empty(Schema::new(attrs));
    for f in udb.world.worlds(limit)? {
        let r = oracle_eval(q, udb, &f, limit)?;
        for row in r.rows() {
            out.push(row.to_vec())?;
        }
    }
    out.dedup_in_place();
    Ok(out)
}

/// Ground truth for certain answers: tuples present in *every* world.
pub fn oracle_certain(q: &UQuery, udb: &UDatabase, limit: usize) -> Result<Relation> {
    let attrs = q.attrs(udb)?;
    let worlds = udb.world.worlds(limit)?;
    let mut acc: Option<BTreeSet<Row>> = None;
    for f in &worlds {
        let r = oracle_eval(q, udb, f, limit)?;
        let set: BTreeSet<Row> = r.rows().iter().cloned().collect();
        acc = Some(match acc {
            None => set,
            Some(prev) => prev.intersection(&set).cloned().collect(),
        });
    }
    let mut out = Relation::empty(Schema::new(attrs));
    for row in acc.unwrap_or_default() {
        out.push(row.to_vec())?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udb::figure1_database;
    use urel_relalg::{col, lit_i64, lit_str, Value};

    /// Example 3.6: ids of enemy tanks.
    fn enemy_tanks() -> UQuery {
        table("r")
            .select(Expr::and([
                col("type").eq(lit_str("Tank")),
                col("faction").eq(lit_str("Enemy")),
            ]))
            .project(["id"])
    }

    #[test]
    fn example_3_6_possible_ids() {
        let db = figure1_database();
        let poss = oracle_possible(&enemy_tanks(), &db, 64).unwrap();
        // U4 in the paper: ids {3, 2, 4}.
        let expect = Relation::from_rows(
            ["id"],
            vec![
                vec![Value::Int(2)],
                vec![Value::Int(3)],
                vec![Value::Int(4)],
            ],
        )
        .unwrap();
        assert!(poss.set_eq(&expect));
    }

    #[test]
    fn example_3_6_certain_is_empty() {
        // No vehicle is an enemy tank in all eight worlds.
        let db = figure1_database();
        let cert = oracle_certain(&enemy_tanks(), &db, 64).unwrap();
        assert!(cert.is_empty());
    }

    #[test]
    fn example_3_7_pairs_of_enemy_tanks() {
        // Self-join of S asking for two distinct enemy tanks: the paper's
        // U5 lists possible id pairs (3,4), (2,4), (4,3), (4,2).
        let db = figure1_database();
        let s1 = table_as("r", "s1").select(Expr::and([
            col("s1.type").eq(lit_str("Tank")),
            col("s1.faction").eq(lit_str("Enemy")),
        ]));
        let s2 = table_as("r", "s2").select(Expr::and([
            col("s2.type").eq(lit_str("Tank")),
            col("s2.faction").eq(lit_str("Enemy")),
        ]));
        let q = s1
            .join(s2, col("s1.id").ne(col("s2.id")))
            .project(["s1.id", "s2.id"]);
        let poss = oracle_possible(&q, &db, 64).unwrap();
        let expect = Relation::from_rows(
            ["s1.id", "s2.id"],
            vec![
                vec![Value::Int(3), Value::Int(4)],
                vec![Value::Int(2), Value::Int(4)],
                vec![Value::Int(4), Value::Int(3)],
                vec![Value::Int(4), Value::Int(2)],
            ],
        )
        .unwrap();
        assert!(poss.set_eq(&expect), "got {poss}");
    }

    #[test]
    fn attrs_and_validation() {
        let db = figure1_database();
        let q = table("r");
        assert_eq!(q.attrs(&db).unwrap().len(), 3,);
        // Join without alias clashes.
        let bad = table("r").join(table("r"), lit_i64(1).eq(lit_i64(1)));
        assert!(bad.attrs(&db).is_err());
        // Unknown projection attribute.
        let bad = table("r").project(["nope"]);
        assert!(bad.attrs(&db).is_err());
    }

    #[test]
    fn union_requires_matching_names() {
        let db = figure1_database();
        let ok = table("r").project(["id"]).union(table("r").project(["id"]));
        assert!(ok.attrs(&db).is_ok());
        let bad = table("r")
            .project(["id"])
            .union(table("r").project(["type"]));
        assert!(bad.attrs(&db).is_err());
    }

    #[test]
    fn op_counters() {
        let q = enemy_tanks().poss();
        assert_eq!(q.op_count(), 3);
        assert_eq!(q.join_ops(), 0);
    }

    #[test]
    fn union_semantics() {
        let db = figure1_database();
        let q = table("r")
            .select(col("faction").eq(lit_str("Enemy")))
            .project(["id"])
            .union(
                table("r")
                    .select(col("type").eq(lit_str("Transport")))
                    .project(["id"]),
            );
        let poss = oracle_possible(&q, &db, 64).unwrap();
        // Enemies possible: 3 (c), 2 (c under x↦2), 4 (d enemy);
        // transports possible: 2, 3 (b), 4 (d transport).
        let expect = Relation::from_rows(
            ["id"],
            vec![
                vec![Value::Int(2)],
                vec![Value::Int(3)],
                vec![Value::Int(4)],
            ],
        )
        .unwrap();
        assert!(poss.set_eq(&expect));
    }
}
