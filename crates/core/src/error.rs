//! Error type for the U-relations layer.

use std::fmt;

/// Errors raised while building or querying U-relational databases.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A ws-descriptor assigned two different values to one variable.
    InconsistentDescriptor(String),
    /// A variable or domain value is not declared in the world table.
    UnknownWorld(String),
    /// The database violates Definition 2.2 (contradictory field values).
    InvalidDatabase(String),
    /// A query is malformed (unknown relation/attribute, alias clash…).
    InvalidQuery(String),
    /// An enumeration guard tripped (too many worlds / combinations).
    TooLarge(String),
    /// Underlying relational engine failure.
    Engine(urel_relalg::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InconsistentDescriptor(m) => write!(f, "inconsistent ws-descriptor: {m}"),
            Error::UnknownWorld(m) => write!(f, "unknown variable/value: {m}"),
            Error::InvalidDatabase(m) => write!(f, "invalid U-relational database: {m}"),
            Error::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            Error::TooLarge(m) => write!(f, "enumeration too large: {m}"),
            Error::Engine(e) => write!(f, "relational engine: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<urel_relalg::Error> for Error {
    fn from(e: urel_relalg::Error) -> Self {
        Error::Engine(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
