//! Error type for the U-relations layer.
//!
//! The `Display` / `std::error::Error` / `Result` boilerplate comes from
//! [`urel_relalg::impl_error_boilerplate!`], shared with the engine crate;
//! the `From<urel_relalg::Error>` conversion makes cross-crate `?` work in
//! examples and tests that mix both layers.

/// Errors raised while building or querying U-relational databases.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A ws-descriptor assigned two different values to one variable.
    InconsistentDescriptor(String),
    /// A variable or domain value is not declared in the world table.
    UnknownWorld(String),
    /// The database violates Definition 2.2 (contradictory field values).
    InvalidDatabase(String),
    /// A query is malformed (unknown relation/attribute, alias clash…).
    InvalidQuery(String),
    /// An enumeration guard tripped (too many worlds / combinations).
    TooLarge(String),
    /// Underlying relational engine failure.
    Engine(urel_relalg::Error),
}

urel_relalg::impl_error_boilerplate! {
    Error {
        InconsistentDescriptor(m) => "inconsistent ws-descriptor: {m}",
        UnknownWorld(m) => "unknown variable/value: {m}",
        InvalidDatabase(m) => "invalid U-relational database: {m}",
        InvalidQuery(m) => "invalid query: {m}",
        TooLarge(m) => "enumeration too large: {m}",
        Engine(e) => "relational engine: {e}",
    }
    source: Engine
}

impl From<urel_relalg::Error> for Error {
    fn from(e: urel_relalg::Error) -> Self {
        Error::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_errors_convert_and_chain() {
        fn relational() -> urel_relalg::error::Result<()> {
            Err(urel_relalg::Error::UnknownRelation("r".into()))
        }
        fn layered() -> Result<()> {
            relational()?; // cross-crate `?` via From
            Ok(())
        }
        let err = layered().unwrap_err();
        assert!(matches!(&err, Error::Engine(_)));
        assert_eq!(err.to_string(), "relational engine: unknown relation `r`");
        // source() exposes the engine error for error-chain walkers.
        let src = std::error::Error::source(&err).expect("has source");
        assert_eq!(src.to_string(), "unknown relation `r`");
    }
}
