//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the subset of the criterion 0.5 API its bench targets use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a simple median-of-samples wall clock (one warm-up
//! iteration, then `sample_size` timed iterations) printed as
//! `bench <group>/<id> ... <median>` lines — enough to record relative
//! numbers and keep `cargo bench` runnable end-to-end. Swap the
//! `criterion` entry in `[workspace.dependencies]` for a registry version
//! to get real statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Drives one benchmark's iterations.
pub struct Bencher {
    samples: usize,
    median: Duration,
}

impl Bencher {
    /// Time `routine`, reporting the median of `samples` runs after one
    /// warm-up run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort();
        self.median = times[times.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        // At least one timed sample, or the median index underflows
        // (UREL_BENCH_SAMPLES=0 would otherwise panic every target).
        let mut b = Bencher {
            samples: self.sample_size.min(self.criterion.max_samples).max(1),
            median: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "bench {}/{} ... median {:?} ({} samples)",
            self.name, id, b.median, b.samples
        );
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut f = f;
        self.run(&id, |b| f(b));
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut f = f;
        self.run(&id.name.clone(), |b| f(b, input));
        self
    }

    /// End the group (drop-equivalent; kept for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    max_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // UREL_BENCH_SAMPLES caps per-bench iterations (CI smoke runs).
        let max_samples = std::env::var("UREL_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(usize::MAX);
        Criterion { max_samples }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declare a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sample_cap_still_takes_one_sample() {
        let mut c = Criterion { max_samples: 0 };
        let mut group = c.benchmark_group("g");
        let mut ran = 0usize;
        group.bench_function("f", |b| b.iter(|| ran += 1));
        // warm-up + one clamped sample, no empty-median panic
        assert_eq!(ran, 2);
    }

    #[test]
    fn bencher_measures_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0usize;
        group.bench_function("f", |b| b.iter(|| ran += 1));
        // one warm-up + three samples
        assert_eq!(ran, 4);
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
