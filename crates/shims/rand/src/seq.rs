//! Sequence utilities: in-place shuffling and distinct-index sampling.

use crate::{Rng, RngCore};

/// Shuffling for slices (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

/// Distinct-index sampling (subset of `rand::seq::index`).
pub mod index {
    use super::*;

    /// A set of distinct indices in `0..length`.
    #[derive(Clone, Debug)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Iterate the sampled indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// `true` when empty.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Consume into a plain vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Sample `amount` distinct indices from `0..length` (partial
    /// Fisher–Yates; O(length) memory, fine at this repo's scales).
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} distinct indices from 0..{length}"
        );
        let mut pool: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = i + (rng.next_u64() % (length - i) as u64) as usize;
            pool.swap(i, j);
        }
        pool.truncate(amount);
        IndexVec(pool)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::rngs::StdRng;
        use crate::SeedableRng;

        #[test]
        fn sample_is_distinct_and_in_range() {
            let mut rng = StdRng::seed_from_u64(9);
            let idx = sample(&mut rng, 50, 20);
            let mut v = idx.into_vec();
            assert_eq!(v.len(), 20);
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), 20);
            assert!(v.iter().all(|&i| i < 50));
        }
    }
}
