//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic 64-bit generator (SplitMix64). The real `rand::rngs::StdRng`
/// is ChaCha-based; this shim trades cryptographic strength for zero
/// dependencies, which is fine for data generation and sampling.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Sebastiano Vigna's SplitMix64.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    #[inline]
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}
