//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the subset of the `rand 0.8` API the repo actually uses, backed by a
//! deterministic SplitMix64 generator. Statistical quality is more than
//! adequate for data generation and Monte-Carlo estimation; the point is
//! that every artifact stays reproducible from a `u64` seed. To use the
//! real crate, swap the `rand` entry in `[workspace.dependencies]` for a
//! registry version — no source changes needed.

pub mod rngs;
pub mod seq;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range (panics if empty).
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range over empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }

    /// Draw a value of any [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3i64..9);
            assert!((3..9).contains(&v));
            let v = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&v));
            let v = rng.gen_range(-4i64..=-1);
            assert!((-4..=-1).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
