//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating values of one type. Unlike real proptest there
/// is no value tree / shrinking: a strategy is just a deterministic
/// function of the RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy it
    /// selects (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `depth` levels of `recurse` applied over the
    /// leaf, with the leaf mixed back in at every level so expected sizes
    /// stay bounded. `desired_size` / `expected_branch_size` are accepted
    /// for API compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        current
    }

    /// Type-erase into a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

// Strategies compose by reference too (`(&strat).generate(..)`).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Object-safe view used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// Weighted choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs; weights must not all be 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights summed to total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy over empty range");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Weighted union of strategies, all erased to one value type.
///
/// `prop_oneof![s1, s2]` gives equal weights; `prop_oneof![2 => s1, 1 => s2]`
/// sets explicit ones.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::deterministic("ranges_and_maps");
        let s = (0i64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn union_respects_zero_weightless_arms() {
        let mut rng = TestRng::deterministic("union");
        let s: Union<i64> = prop_oneof![1 => Just(1i64), 3 => Just(2i64)];
        let twos = (0..1000).filter(|_| s.generate(&mut rng) == 2).count();
        assert!((600..900).contains(&twos), "{twos}");
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn size(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    assert!((0..4).contains(v));
                    1
                }
                Tree::Node(c) => 1 + c.iter().map(size).sum::<usize>(),
            }
        }
        let s = (0i64..4)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::deterministic("recursive");
        for _ in 0..50 {
            assert!(size(&s.generate(&mut rng)) < 1000);
        }
    }
}
