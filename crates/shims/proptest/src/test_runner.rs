//! Runner configuration, the per-test RNG, and the case-failure type.

use std::fmt;

/// Subset of `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases (the constructor the suites use).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (no shrinking in this shim).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 generator seeded from the test name, so every
/// property replays the same case sequence on every run and machine.
///
/// That determinism means re-running never explores new inputs; set
/// `PROPTEST_SHIM_SEED=<u64>` to mix a different seed into every
/// property (e.g. a scheduled CI job rotating seeds) — failures
/// reproduce by exporting the same value.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (the generated test's name), mixed
    /// with `PROPTEST_SHIM_SEED` when set.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Some(extra) = std::env::var("PROPTEST_SHIM_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            h ^= extra.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly distributed bits (SplitMix64).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` (`bound > 0`).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
