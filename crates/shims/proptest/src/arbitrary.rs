//! `any::<T>()` for the handful of types the suites ask for, plus the
//! `proptest!` / `prop_assert!` macro family.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// The canonical strategy for an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Declare property tests. Accepts an optional leading
/// `#![proptest_config(...)]`, then any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
///
/// Each property runs `config.cases` deterministic cases; a failing case
/// panics with the case index (no shrinking in this shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest property `{}` failed at case {}/{}:\n{}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Assert inside a `proptest!` body; failure aborts the case with the
/// message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}
