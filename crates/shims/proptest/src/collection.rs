//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Strategy for `Vec`s of `elem` with length in `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap`s with *up to* the drawn number of entries
/// (duplicate keys collapse, matching real proptest's behaviour of
/// meeting the minimum only when the key space allows).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
#[derive(Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = self.size.pick(rng);
        let mut out = BTreeMap::new();
        // A few retries per slot so small key domains still reach the
        // requested size most of the time.
        let mut budget = n * 4;
        while out.len() < n && budget > 0 {
            out.insert(self.key.generate(rng), self.value.generate(rng));
            budget -= 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_in_range() {
        let s = vec(0i64..5, 2..6);
        let mut rng = TestRng::deterministic("vec_lengths");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }

    #[test]
    fn btree_map_respects_bounds() {
        let s = btree_map(0u32..100, 0i64..5, 1..=3);
        let mut rng = TestRng::deterministic("btree_map");
        for _ in 0..200 {
            let m = s.generate(&mut rng);
            assert!((1..=3).contains(&m.len()));
        }
    }
}
