//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the subset of the proptest API its test suites use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_recursive` / `boxed`,
//! range and tuple strategies, `Just`, weighted unions (`prop_oneof!`),
//! `prop::collection::{vec, btree_map}`, `any::<bool>()`, and the
//! `proptest!` / `prop_assert!` family of macros.
//!
//! Differences from the real crate: generation is a deterministic
//! function of the test name and case index (reproducible across runs and
//! machines), and failing cases are reported but **not shrunk**. To use
//! the real crate, swap the `proptest` entry in
//! `[workspace.dependencies]` for a registry version.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Mirrors `proptest::prelude::prop` (module-style access to strategies).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// The glob-import surface used by test files.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
