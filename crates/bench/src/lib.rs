//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md §5 for the index). All binaries
//! accept `--quick` (or `UREL_QUICK=1`) to run a reduced grid, and
//! `--scale-cap <f>` to cap the largest scale factor.

use std::time::{Duration, Instant};

/// The paper's scale-factor sweep (micro-base units; see DESIGN.md).
pub const SCALES: [f64; 5] = [0.01, 0.05, 0.1, 0.5, 1.0];
/// The paper's correlation-ratio sweep.
pub const CORRELATIONS: [f64; 3] = [0.1, 0.25, 0.5];
/// The paper's uncertainty-ratio sweep.
pub const UNCERTAINTIES: [f64; 3] = [0.001, 0.01, 0.1];

/// Command-line configuration shared by the harness binaries.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Reduced grid for smoke runs.
    pub quick: bool,
    /// Upper bound on the scale factors used.
    pub scale_cap: f64,
    /// Repetitions per timed point (the paper used 4 and took medians).
    pub reps: usize,
}

impl HarnessConfig {
    /// Parse from `std::env` (`--quick`, `--scale-cap <f>`, `--reps <n>`,
    /// `UREL_QUICK=1`).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut cfg = HarnessConfig {
            quick: std::env::var("UREL_QUICK").is_ok_and(|v| v == "1"),
            scale_cap: f64::INFINITY,
            reps: 3,
        };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => cfg.quick = true,
                "--scale-cap" => {
                    i += 1;
                    cfg.scale_cap = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(f64::INFINITY);
                }
                "--reps" => {
                    i += 1;
                    cfg.reps = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(3);
                }
                other => eprintln!("ignoring unknown argument `{other}`"),
            }
            i += 1;
        }
        cfg
    }

    /// The scale sweep under this configuration.
    pub fn scales(&self) -> Vec<f64> {
        let cap = if self.quick {
            self.scale_cap.min(0.1)
        } else {
            self.scale_cap
        };
        SCALES.iter().copied().filter(|s| *s <= cap).collect()
    }

    /// The correlation sweep (quick: first two values).
    pub fn correlations(&self) -> Vec<f64> {
        if self.quick {
            CORRELATIONS[..2].to_vec()
        } else {
            CORRELATIONS.to_vec()
        }
    }

    /// The uncertainty sweep.
    pub fn uncertainties(&self) -> Vec<f64> {
        UNCERTAINTIES.to_vec()
    }
}

/// Time a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Median wall-clock over `reps` runs (the paper's methodology).
pub fn median_time<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let (out, d) = time(&mut f);
        times.push(d);
        last = Some(out);
    }
    times.sort();
    (last.unwrap(), times[times.len() / 2])
}

/// Format a duration in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_deterministic_for_constant_work() {
        let (v, d) = median_time(3, || 42);
        assert_eq!(v, 42);
        assert!(d.as_nanos() < 1_000_000_000);
    }

    #[test]
    fn scale_grid_respects_caps() {
        let cfg = HarnessConfig {
            quick: true,
            scale_cap: f64::INFINITY,
            reps: 1,
        };
        assert!(cfg.scales().iter().all(|&s| s <= 0.1));
        let cfg = HarnessConfig {
            quick: false,
            scale_cap: 0.05,
            reps: 1,
        };
        assert_eq!(cfg.scales(), vec![0.01, 0.05]);
    }
}
