//! Figure 14: querying attribute-level vs tuple-level U-relations vs
//! ULDBs — Q3 without `poss` and without erroneous-tuple removal, on the
//! paper's six small settings (z = 0.1).
//!
//! Expected shape: attribute level beats tuple level severalfold, and
//! beats the ULDB by an order of magnitude; the tuple-level and ULDB
//! representations are also vastly larger (exponential in arity).

use urel_bench::{median_time, secs, HarnessConfig};
use urel_relalg::{col, lit_str};
use urel_tpch::tuple_level::{expand_tuple_level, to_uldb};
use urel_tpch::{generate, GenParams};
use urel_uldb::Uldb;

/// Q3 without the final `poss` (the Figure 14 methodology).
fn q3_no_poss() -> urel_core::UQuery {
    use urel_core::{table, table_as};
    let n1 = table_as("nation", "n1").select(col("n1.n_name").eq(lit_str("GERMANY")));
    let n2 = table_as("nation", "n2").select(col("n2.n_name").eq(lit_str("IRAQ")));
    table("supplier")
        .join(table("lineitem"), col("s_suppkey").eq(col("l_suppkey")))
        .join(table("orders"), col("o_orderkey").eq(col("l_orderkey")))
        .join(table("customer"), col("c_custkey").eq(col("o_custkey")))
        .join(n1, col("s_nationkey").eq(col("n1.n_nationkey")))
        .join(n2, col("c_nationkey").eq(col("n2.n_nationkey")))
        .project(["n1.n_name", "n2.n_name"])
}

/// The same query over the ULDB, lineage propagated, no minimization.
fn q3_uldb(db: &mut Uldb) -> usize {
    let rename = |db: &mut Uldb, src: &str, out: &str, prefix: &str| {
        let mut r = db.relation(src).expect("exists").clone();
        r.attrs = r.attrs.iter().map(|a| format!("{prefix}{a}")).collect();
        r.name = out.to_string();
        db.insert_derived(r);
    };
    rename(db, "nation", "n1", "n1_");
    rename(db, "nation", "n2", "n2_");
    db.select("n1", "n1f", &col("n1_n_name").eq(lit_str("GERMANY")))
        .unwrap();
    db.select("n2", "n2f", &col("n2_n_name").eq(lit_str("IRAQ")))
        .unwrap();
    db.join(
        "supplier",
        "lineitem",
        "j1",
        &col("s_suppkey").eq(col("l_suppkey")),
    )
    .unwrap();
    db.join(
        "j1",
        "orders",
        "j2",
        &col("o_orderkey").eq(col("l_orderkey")),
    )
    .unwrap();
    db.join(
        "j2",
        "customer",
        "j3",
        &col("c_custkey").eq(col("o_custkey")),
    )
    .unwrap();
    db.join(
        "j3",
        "n1f",
        "j4",
        &col("s_nationkey").eq(col("n1_n_nationkey")),
    )
    .unwrap();
    db.join(
        "j4",
        "n2f",
        "j5",
        &col("c_nationkey").eq(col("n2_n_nationkey")),
    )
    .unwrap();
    db.relation("j5").unwrap().alt_count()
}

fn main() {
    let cfg = HarnessConfig::from_args();
    // The paper's six settings (x ≤ 0.01), plus an x = 0.1 row per scale:
    // at micro-base scale the tuple-level blow-up that drives the Figure
    // 14 gap only becomes visible at the higher uncertainty ratio (the
    // paper's absolute row counts are 100× ours; see EXPERIMENTS.md).
    let settings: Vec<(f64, f64)> = if cfg.quick {
        vec![(0.01, 0.001), (0.01, 0.01), (0.01, 0.1)]
    } else {
        vec![
            (0.01, 0.001),
            (0.05, 0.001),
            (0.1, 0.001),
            (0.01, 0.01),
            (0.05, 0.01),
            (0.1, 0.01),
            (0.01, 0.1),
            (0.05, 0.1),
            (0.1, 0.1),
        ]
    };
    println!("# Figure 14: Q3 (no poss, no minimization), z = 0.1");
    println!(
        "{:>6} {:>8} | {:>12} {:>12} {:>12} | {:>12} {:>12}",
        "s", "x", "attr(s)", "tuple(s)", "uldb(s)", "tuple rows", "uldb alts"
    );
    for (s, x) in settings {
        let out = generate(&GenParams::paper(s, x, 0.1)).expect("generation");
        let q = q3_no_poss();

        // Each representation is encoded once; the timed section is
        // query evaluation over the shared catalog.
        let attr = out.db.prepare();
        let (_, attr_t) = median_time(cfg.reps, || {
            attr.evaluate(&q).expect("attribute-level Q3").len()
        });

        let tl = expand_tuple_level(&out.db, 1 << 20, 1 << 24).expect("expansion");
        let tl_rows = tl.total_rows();
        let tuple = tl.prepare();
        let (_, tuple_t) = median_time(cfg.reps, || {
            tuple.evaluate(&q).expect("tuple-level Q3").len()
        });

        let uldb0 = to_uldb(&tl).expect("uldb mapping");
        let mut alts = 0;
        let (_, uldb_t) = median_time(cfg.reps, || {
            let mut db = uldb0.clone();
            alts = q3_uldb(&mut db);
            alts
        });

        println!(
            "{:>6} {:>8} | {:>12} {:>12} {:>12} | {:>12} {:>12}",
            s,
            x,
            secs(attr_t),
            secs(tuple_t),
            secs(uldb_t),
            tl_rows,
            alts
        );
    }
    println!();
    println!("# Shape check: attr < tuple < uldb at every setting; the gap grows");
    println!("# with x as tuple-level row counts explode (late materialization).");
}
