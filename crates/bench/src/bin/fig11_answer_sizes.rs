//! Figure 11: query answer sizes at the largest scale, as a function of
//! the uncertainty ratio, one panel per query, one series per correlation
//! ratio.
//!
//! The paper's `poss` is a plain relational projection (no duplicate
//! elimination), so its answer sizes count result *rows* — the size of
//! the result U-relation. We report both that bag size (the paper's
//! measure) and the distinct possible-tuple count. Shape: sizes increase
//! with `x` and marginally with `z`.

use urel_bench::HarnessConfig;
use urel_core::UQuery;
use urel_tpch::{generate, q1, q2, q3, GenParams};

fn strip_poss(q: UQuery) -> UQuery {
    match q {
        UQuery::Poss { input } => *input,
        other => other,
    }
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let scale = *cfg.scales().last().expect("non-empty scale grid");
    println!("# Figure 11: answer sizes at scale {scale} (rows = paper's bag measure)");
    println!(
        "{:>6} {:>8} | {:>10} {:>10} {:>10} | {:>8} {:>8} {:>8}",
        "z", "x", "Q1 rows", "Q2 rows", "Q3 rows", "Q1 set", "Q2 set", "Q3 set"
    );
    for z in cfg.correlations() {
        for x in cfg.uncertainties() {
            let out = generate(&GenParams::paper(scale, x, z)).expect("generation");
            let prepared = out.db.prepare();
            let mut rows = Vec::new();
            let mut sets = Vec::new();
            for q in [q1(), q2(), q3()] {
                rows.push(
                    prepared
                        .evaluate(&strip_poss(q.clone()))
                        .expect("query")
                        .len(),
                );
                sets.push(prepared.possible(&q).expect("query").len());
            }
            println!(
                "{:>6} {:>8} | {:>10} {:>10} {:>10} | {:>8} {:>8} {:>8}",
                z, x, rows[0], rows[1], rows[2], sets[0], sets[1], sets[2]
            );
        }
    }
    println!();
    println!("# Shape check: every column grows with x (more alternatives reach");
    println!("# the predicates); z has a secondary effect via domain sizes.");
}
