//! Closed-loop load harness for the session server (`BENCH_server`).
//!
//! Spawns (or connects to) a server, drives it with `--clients`
//! concurrent sessions each pacing itself at `--qps` requests per
//! second over a fixed query mix, and reports latency percentiles in
//! the `bench <name> ... median <dur> (<n> samples)` format that
//! `scripts/bench_diff.py` records and gates on:
//!
//! ```text
//! bench server/p50 ... median 412µs (981 samples)
//! bench server/p99 ... median 2.31ms (981 samples)
//! bench server/p999 ... median 4.02ms (981 samples)
//! throughput 196.2 req/s (981 completed, 0 errors, 3 shed)
//! ```
//!
//! Closed-loop means every client waits for each response before
//! sending the next request, so latency includes admission queueing.
//! Shed (`"kind":"shed"`) and deadline-cancelled responses are counted
//! but are *not* errors; any parse/proto/engine error — or a run that
//! completes zero queries — exits non-zero, which is what makes the CI
//! smoke job a real gate.
//!
//! Usage: `load_server [--clients N] [--qps Q] [--duration-secs S]
//! [--db figure1|tpch:<scale>[:<x>]] [--addr host:port]`.
//! Without `--addr` an in-process server is spawned (same serve loop
//! as the `urel-server` binary), still exercising the full TCP path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use urel_server::{Client, Json, ServerConfig};

/// The fixed query mix (over the figure-1 database): a point select, a
/// self-join, a `certain` clause, and a Monte-Carlo confidence query.
const MIX: &[&str] = &[
    "from r | where id = 1 | select type | possible",
    "from r as a | join r as b on a.id = b.id | select a.type | possible",
    "from r | select type | certain",
    "from r | select id | possible confidence 0.2",
];

struct Args {
    clients: usize,
    qps: f64,
    duration: Duration,
    db: String,
    addr: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mut a = Args {
        clients: 4,
        qps: 50.0,
        duration: Duration::from_secs(5),
        db: "figure1".to_string(),
        addr: None,
    };
    let mut i = 1;
    while i < argv.len() {
        let take = |i: &mut usize| -> Option<String> {
            *i += 1;
            argv.get(*i).cloned()
        };
        match argv[i].as_str() {
            "--clients" => a.clients = take(&mut i).and_then(|s| s.parse().ok()).unwrap_or(4),
            "--qps" => a.qps = take(&mut i).and_then(|s| s.parse().ok()).unwrap_or(50.0),
            "--duration-secs" => {
                a.duration = Duration::from_secs_f64(
                    take(&mut i).and_then(|s| s.parse().ok()).unwrap_or(5.0),
                )
            }
            "--db" => a.db = take(&mut i).unwrap_or_else(|| "figure1".into()),
            "--addr" => a.addr = take(&mut i),
            other => eprintln!("ignoring unknown argument `{other}`"),
        }
        i += 1;
    }
    a
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3}s", d.as_secs_f64())
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct ClientTally {
    latencies: Vec<Duration>,
    shed: usize,
    errors: Vec<String>,
}

fn drive_client(
    addr: std::net::SocketAddr,
    seq: Arc<AtomicUsize>,
    qps: f64,
    deadline: Instant,
) -> std::io::Result<ClientTally> {
    let mut client = Client::connect(addr)?;
    let mut tally = ClientTally {
        latencies: Vec::new(),
        shed: 0,
        errors: Vec::new(),
    };
    let interval = Duration::from_secs_f64(1.0 / qps.max(0.001));
    let mut next_send = Instant::now();
    while Instant::now() < deadline {
        if let Some(wait) = next_send.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        next_send += interval;
        let q = MIX[seq.fetch_add(1, Ordering::Relaxed) % MIX.len()];
        let start = Instant::now();
        let resp = client.query(q)?;
        let elapsed = start.elapsed();
        if resp.get("ok").map(Json::is_true).unwrap_or(false) {
            tally.latencies.push(elapsed);
        } else {
            match resp.get("kind").and_then(Json::as_str) {
                Some("shed") | Some("cancelled") => tally.shed += 1,
                kind => tally.errors.push(format!(
                    "query `{q}` failed ({}): {}",
                    kind.unwrap_or("?"),
                    resp.get("error").and_then(Json::as_str).unwrap_or("?")
                )),
            }
        }
    }
    Ok(tally)
}

fn main() {
    let args = parse_args();

    // Either connect to an external server or host one in-process (the
    // same serve loop as the binary; the TCP path is identical).
    let (addr, local) = match &args.addr {
        Some(a) => (
            a.parse()
                .unwrap_or_else(|e| panic!("bad --addr `{a}`: {e}")),
            None,
        ),
        None => {
            let udb = Arc::new(match args.db.as_str() {
                "figure1" => urel_core::figure1_database(),
                spec => {
                    let rest = spec
                        .strip_prefix("tpch:")
                        .unwrap_or_else(|| panic!("unknown --db `{spec}`"));
                    let mut parts = rest.split(':');
                    let scale: f64 = parts.next().unwrap_or("0.1").parse().expect("tpch scale");
                    let x: f64 = parts.next().map_or(0.1, |s| s.parse().expect("tpch x"));
                    urel_tpch::generate(&urel_tpch::GenParams::paper(scale, x, 0.5))
                        .expect("tpch generation")
                        .db
                }
            });
            let server =
                urel_server::serve(udb, ServerConfig::from_env()).expect("bind in-process server");
            (server.local_addr(), Some(server))
        }
    };

    let seq = Arc::new(AtomicUsize::new(0));
    let run_start = Instant::now();
    let deadline = run_start + args.duration;
    let tallies: Vec<std::io::Result<ClientTally>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.clients)
            .map(|_| {
                let seq = Arc::clone(&seq);
                s.spawn(move || drive_client(addr, seq, args.qps, deadline))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = run_start.elapsed();

    let mut latencies = Vec::new();
    let mut shed = 0usize;
    let mut errors = Vec::new();
    for t in tallies {
        match t {
            Ok(t) => {
                latencies.extend(t.latencies);
                shed += t.shed;
                errors.extend(t.errors);
            }
            Err(e) => errors.push(format!("client I/O error: {e}")),
        }
    }
    if let Some(server) = local {
        server.shutdown();
    }

    for e in errors.iter().take(10) {
        eprintln!("error: {e}");
    }
    if !errors.is_empty() {
        eprintln!("load run failed: {} protocol error(s)", errors.len());
        std::process::exit(1);
    }
    if latencies.is_empty() {
        eprintln!("load run failed: zero completed queries");
        std::process::exit(1);
    }

    latencies.sort();
    let n = latencies.len();
    println!(
        "bench server/p50 ... median {} ({n} samples)",
        fmt_dur(percentile(&latencies, 0.50))
    );
    println!(
        "bench server/p99 ... median {} ({n} samples)",
        fmt_dur(percentile(&latencies, 0.99))
    );
    println!(
        "bench server/p999 ... median {} ({n} samples)",
        fmt_dur(percentile(&latencies, 0.999))
    );
    println!(
        "throughput {:.1} req/s ({n} completed, 0 errors, {shed} shed)",
        n as f64 / elapsed.as_secs_f64()
    );
}
