//! Figures 6/7 and Theorems 5.2/5.6: the succinctness separations.
//!
//! * Ring-correlated world-set (Example 5.1): inputs are linear in both
//!   formalisms, but the answer to `σ_{A=B}(R)` is 2n rows as a
//!   U-relation vs 2ⁿ local worlds as a WSD (Theorem 5.2).
//! * Or-set relations: k·m rows as U-relations vs mᵏ alternatives as a
//!   ULDB x-tuple (Theorem 5.6).

use urel_bench::HarnessConfig;
use urel_core::construct::or_set_database;
use urel_relalg::Value;
use urel_uldb::convert::{or_set_to_uldb, or_set_uldb_alternatives};
use urel_wsd::ring;

fn main() {
    let cfg = HarnessConfig::from_args();
    let n_max = if cfg.quick { 10 } else { 16 };

    println!("# Theorem 5.2 (Figures 6/7): σ_(A=B) over the ring world-set");
    println!(
        "{:>4} | {:>14} {:>14} | {:>16} {:>18}",
        "n", "U-rel rows", "U-rel bytes", "WSD cells", "WSD/U-rel ratio"
    );
    for n in (2..=n_max).step_by(2) {
        let u = ring::ring_answer_urel(n);
        let wsd_cells = ring::ring_answer_wsd_cells(n);
        let ratio = wsd_cells as f64 / u.len() as f64;
        println!(
            "{:>4} | {:>14} {:>14} | {:>16} {:>18.1}",
            n,
            u.len(),
            u.size_bytes(),
            wsd_cells,
            ratio
        );
    }
    // Constructive check at a feasible size.
    let wsd = ring::ring_answer_wsd(10).expect("n=10 is feasible");
    assert_eq!(wsd.total_cells() as u128, ring::ring_answer_wsd_cells(10));
    println!(
        "# (verified constructively at n = 10: {} cells)",
        wsd.total_cells()
    );

    println!();
    println!("# Theorem 5.6: or-set relation, m = 8 alternatives per field");
    println!(
        "{:>4} | {:>14} {:>18} | {:>18}",
        "k", "U-rel rows", "ULDB alternatives", "ULDB/U-rel ratio"
    );
    let m = 8usize;
    for k in 1..=8 {
        let row: Vec<Vec<Value>> = (0..k)
            .map(|a| (0..m).map(|i| Value::Int((a * 100 + i) as i64)).collect())
            .collect();
        let attrs: Vec<String> = (0..k).map(|i| format!("c{i}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let udb =
            or_set_database("r", &attr_refs, std::slice::from_ref(&row)).expect("or-set U-rel");
        let uldb_alts = or_set_uldb_alternatives(&vec![m; k]);
        // Construct the ULDB while it is feasible, to keep the numbers
        // honest rather than formula-only.
        if uldb_alts <= 1 << 16 {
            let uldb = or_set_to_uldb("r", &attr_refs, &[row], 1 << 16).expect("or-set ULDB");
            assert_eq!(uldb.relation("r").unwrap().alt_count() as u128, uldb_alts);
        }
        println!(
            "{:>4} | {:>14} {:>18} | {:>18.1}",
            k,
            udb.total_rows(),
            uldb_alts,
            uldb_alts as f64 / udb.total_rows() as f64
        );
    }
    println!();
    println!("# Shape check: both ratios grow exponentially (in n and k).");
}
