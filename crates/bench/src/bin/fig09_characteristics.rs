//! Figure 9: database characteristics across the full parameter grid.
//!
//! For every (scale, correlation, uncertainty) setting — including
//! `x = 0`, the one-world dbgen baseline — prints the total number of
//! worlds (as `10^…`), the maximum number of local worlds (largest
//! variable domain) and the representation size in MB. The paper's
//! headline shape: worlds grow *exponentially* in `x` and `s` while the
//! database size grows only *linearly*.

use urel_bench::HarnessConfig;
use urel_tpch::{generate, GenParams};

fn main() {
    let cfg = HarnessConfig::from_args();
    println!("# Figure 9: #worlds (10^w), max local worlds, dbsize (MB)");
    println!(
        "{:>6} {:>6} | {:>10} {:>8} {:>10}",
        "scale", "corr", "x", "", ""
    );
    println!(
        "{:>6} {:>6} | {:>30} {:>30} {:>30} {:>30}",
        "s", "z", "x=0", "x=0.001", "x=0.01", "x=0.1"
    );
    for s in cfg.scales() {
        for z in cfg.correlations() {
            let mut cells = Vec::new();
            for x in [0.0, 0.001, 0.01, 0.1] {
                let params = GenParams::paper(s, x, z);
                let out = generate(&params).expect("generation succeeds");
                cells.push(format!(
                    "10^{:<9.3} lw={:<5} {:>7.2}MB",
                    out.stats.worlds_log10,
                    out.stats.max_local_worlds,
                    out.stats.size_mb(),
                ));
            }
            println!(
                "{:>6} {:>6} | {:>30} {:>30} {:>30} {:>30}",
                s, z, cells[0], cells[1], cells[2], cells[3]
            );
        }
    }
    println!();
    println!("# Shape checks (paper Section 6, 'Characteristics of U-relations'):");
    println!("#  - #worlds column grows exponentially with x; dbsize only linearly.");
    println!("#  - max local worlds grows with correlation z (higher-DFC variables).");
}
