//! Figures 10 and 13: the plans of the translated queries.
//!
//! * Figure 10 — the optimized merge-placement plan for Q1 (selections on
//!   partitions before merging, projections of unneeded value columns).
//! * Figure 13 — the physical `EXPLAIN` of the rewriting of Q2, as our
//!   engine's optimizer produces it (the paper shows PostgreSQL's plan:
//!   joins keyed on tuple ids with the ψ-conditions as join filters —
//!   look for `(dvN <> dvM) OR (drN = drM)` below).

use urel_bench::HarnessConfig;
use urel_relalg::{explain, optimizer};
use urel_tpch::{generate, q1, q2, GenParams};

fn main() {
    let cfg = HarnessConfig::from_args();
    let scale = if cfg.quick { 0.01 } else { 0.1 };
    let out = generate(&GenParams::paper(scale, 0.1, 0.1)).expect("generation");
    let catalog = out.db.to_catalog();

    println!("# Figure 10: translated + rewritten plan for Q1 (s={scale}, x=0.1, z=0.1)");
    let t1 = urel_core::translate(&out.db, &q1()).expect("translate Q1");
    let opt1 = optimizer::optimize(&t1.plan, &catalog).expect("optimize Q1");
    println!("{}", explain::explain(&opt1, &catalog));

    println!("# Figure 13: EXPLAIN of the rewriting of Q2 (s={scale}, x=0.1, z=0.1)");
    let t2 = urel_core::translate(&out.db, &q2()).expect("translate Q2");
    let opt2 = optimizer::optimize(&t2.plan, &catalog).expect("optimize Q2");
    println!("{}", explain::explain(&opt2, &catalog));

    println!("# Translation size (parsimony, Section 1):");
    println!(
        "#   Q1: logical ops = {}, physical joins = {}",
        q1().op_count(),
        opt1.join_count()
    );
    println!(
        "#   Q2: logical ops = {}, physical joins = {}",
        q2().op_count(),
        opt2.join_count()
    );
}
