//! Figure 12: query evaluation time (median over `--reps`, like the
//! paper's median of four runs) as a function of the scale factor — nine
//! panels (3 queries × 3 correlation ratios), one series per uncertainty
//! ratio.
//!
//! The paper's shape: evaluation time varies roughly linearly with every
//! parameter; Q3 (five joins) on the largest setting stays within
//! interactive times.

use urel_bench::{median_time, secs, HarnessConfig};
use urel_tpch::{generate, q1, q2, q3, GenParams};

fn main() {
    let cfg = HarnessConfig::from_args();
    println!(
        "# Figure 12: median evaluation time in seconds ({} reps)",
        cfg.reps
    );
    println!(
        "{:>4} {:>6} {:>8} {:>6} | {:>10} {:>12}",
        "q", "z", "x", "s", "time(s)", "answer rows"
    );
    for z in cfg.correlations() {
        for x in cfg.uncertainties() {
            for s in cfg.scales() {
                let out = generate(&GenParams::paper(s, x, z)).expect("generation");
                // Encode once per setting; the timed section is query
                // evaluation over the shared catalog (the paper also
                // excludes database load time).
                let prepared = out.db.prepare();
                for (qi, q) in [q1(), q2(), q3()].iter().enumerate() {
                    let (rows, t) =
                        median_time(cfg.reps, || prepared.possible(q).expect("query runs").len());
                    println!(
                        "{:>4} {:>6} {:>8} {:>6} | {:>10} {:>12}",
                        format!("Q{}", qi + 1),
                        z,
                        x,
                        s,
                        secs(t),
                        rows
                    );
                }
            }
        }
    }
    println!();
    println!("# Shape checks: time grows ~linearly in s within each (q, z, x)");
    println!("# series; higher x shifts each series up (factor ≈ 4-10 from");
    println!("# x=0.001 to x=0.1 in the paper).");
}
