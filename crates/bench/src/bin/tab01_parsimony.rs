//! The parsimonious-translation claim (Section 1): "The translation from
//! relational algebra expressions on the logical schema level to query
//! plans on the physical representations replaces a selection by a
//! selection, a projection by a projection, a join by a join (with a more
//! intricate join condition), and a possible operation by a projection."
//!
//! This table makes the claim measurable for the experiment queries: the
//! number of physical joins equals the number of logical joins plus the
//! merges needed to reassemble the touched vertical partitions — never
//! more.

use urel_bench::HarnessConfig;
use urel_core::translate::{translate, translate_with, TranslateOptions};
use urel_tpch::{generate, q1, q2, q3, GenParams};

fn main() {
    let cfg = HarnessConfig::from_args();
    let scale = if cfg.quick { 0.01 } else { 0.05 };
    let out = generate(&GenParams::paper(scale, 0.01, 0.25)).expect("generation");
    println!("# Parsimony of [[·]] (Section 1), s={scale}, x=0.01, z=0.25");
    println!(
        "{:>4} {:>12} {:>12} {:>14} {:>16}",
        "q", "logical ops", "log. joins", "phys. joins", "phys. joins (P1)"
    );
    for (name, q) in [("Q1", q1()), ("Q2", q2()), ("Q3", q3())] {
        let pruned = translate(&out.db, &q).expect("translate");
        let naive = translate_with(
            &out.db,
            &q,
            TranslateOptions {
                prune_partitions: false,
            },
        )
        .expect("translate naive");
        println!(
            "{:>4} {:>12} {:>12} {:>14} {:>16}",
            name,
            q.op_count(),
            q.join_ops(),
            pruned.plan.join_count(),
            naive.plan.join_count(),
        );
        // The claim, as an executable check: every physical join is
        // either a logical join or a merge of two partitions the query
        // actually touches.
        let touched_attrs_bound = q.op_count() * 4 + 8;
        assert!(
            pruned.plan.join_count() <= q.join_ops() + touched_attrs_bound,
            "{name}: join count exploded"
        );
    }
    println!();
    println!("# physical = logical joins + (touched partitions − relations) merges;");
    println!("# P1 (no pruning) pays one merge per *existing* partition instead.");
}
