//! Figure 3 / Example 3.4: merge placement ablation.
//!
//! Three ways to run the same selection–join query over vertical
//! partitions:
//!
//! * **P1 (naive)** — reconstruct every relation completely (merge all
//!   partitions), no optimizer: the paper's "clearly the least efficient".
//! * **P2 (pushed, full merge)** — merge all partitions but let the
//!   optimizer push selections below the merges.
//! * **P3 (late materialization)** — merge only the needed partitions
//!   *and* optimize: the plan shape the paper's translation produces.

use urel_bench::{median_time, secs, HarnessConfig};
use urel_core::TranslateOptions;
use urel_tpch::{generate, q1, GenParams};

fn main() {
    let cfg = HarnessConfig::from_args();
    let scale = if cfg.quick { 0.01 } else { 0.1 };
    let out = generate(&GenParams::paper(scale, 0.01, 0.25)).expect("generation");
    let prepared = out.db.prepare();
    let q = q1();

    let naive = TranslateOptions {
        prune_partitions: false,
    };
    let pruned = TranslateOptions {
        prune_partitions: true,
    };

    println!("# Figure 3: merge-placement ablation on Q1 (s={scale}, x=0.01, z=0.25)");
    println!("{:>28} | {:>10} {:>10}", "plan", "time(s)", "rows");
    for (name, opts, optimize) in [
        ("P1 naive (merge all, raw)", naive, false),
        ("P2 merge all + optimizer", naive, true),
        ("P3 late materialization", pruned, true),
    ] {
        let (rows, t) = median_time(cfg.reps, || {
            prepared
                .evaluate_with(&q, opts, optimize)
                .expect("plan runs")
                .len()
        });
        println!("{:>28} | {:>10} {:>10}", name, secs(t), rows);
    }
    println!();
    println!("# Shape check: P1 ≫ P2 ≥ P3 (the paper: P1 'clearly the least");
    println!("# efficient'; P2 vs P3 depends on selectivities).");
}
