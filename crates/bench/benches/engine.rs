//! Microbenchmarks of the relational engine substrate: hash join vs
//! nested loop, selection throughput, distinct — the physical operators
//! every translated query bottoms out in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urel_relalg::{col, exec, lit_i64, Catalog, Expr, Plan, Relation, Value};

fn catalog(n: usize) -> Catalog {
    let mut c = Catalog::new();
    let fact: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int((i % (n / 10).max(1)) as i64),
            ]
        })
        .collect();
    c.insert("fact", Relation::from_rows(["k", "fk"], fact).unwrap());
    let dim: Vec<Vec<Value>> = (0..(n / 10).max(1))
        .map(|i| vec![Value::Int(i as i64), Value::str(format!("d{i}"))])
        .collect();
    c.insert("dim", Relation::from_rows(["d", "name"], dim).unwrap());
    c
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_join");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let cat = catalog(n);
        let hash = Plan::scan("fact").join(Plan::scan("dim"), col("fk").eq(col("d")));
        group.bench_with_input(BenchmarkId::new("hash", n), &hash, |b, p| {
            b.iter(|| exec::execute(p, &cat).unwrap().len());
        });
        // Same semantics, expressed so the equi-extractor cannot fire.
        let theta = Plan::scan("fact").join(
            Plan::scan("dim"),
            Expr::and([col("fk").le(col("d")), col("fk").ge(col("d"))]),
        );
        if n <= 1_000 {
            group.bench_with_input(BenchmarkId::new("nested_loop", n), &theta, |b, p| {
                b.iter(|| exec::execute(p, &cat).unwrap().len());
            });
        }
    }
    group.finish();
}

fn bench_scan_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scan");
    group.sample_size(10);
    let cat = catalog(50_000);
    let select = Plan::scan("fact").select(col("k").lt(lit_i64(1000)));
    group.bench_function("selection", |b| {
        b.iter(|| exec::execute(&select, &cat).unwrap().len());
    });
    let distinct = Plan::scan("fact").project_names(["fk"]).distinct();
    group.bench_function("project_distinct", |b| {
        b.iter(|| exec::execute(&distinct, &cat).unwrap().len());
    });
    group.finish();
}

criterion_group!(benches, bench_joins, bench_scan_ops);
criterion_main!(benches);
