//! Criterion benches for the Figure 12 workload at fixed small settings:
//! translated-query evaluation for Q1/Q2/Q3 across uncertainty ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urel_tpch::{generate, q1, q2, q3, GenParams};

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_queries");
    group.sample_size(10);
    for &x in &[0.001, 0.01, 0.1] {
        let out = generate(&GenParams::paper(0.01, x, 0.25)).expect("generation");
        // Encode the representation once; iterations measure query
        // evaluation over the shared catalog, not re-encoding.
        let prepared = out.db.prepare();
        for (name, q) in [("q1", q1()), ("q2", q2()), ("q3", q3())] {
            group.bench_with_input(BenchmarkId::new(name, format!("x={x}")), &q, |b, q| {
                b.iter(|| prepared.possible(q).expect("query runs").len());
            });
        }
    }
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    group.sample_size(10);
    for &s in &[0.01, 0.05] {
        group.bench_with_input(BenchmarkId::new("generate", s), &s, |b, &s| {
            b.iter(|| generate(&GenParams::paper(s, 0.01, 0.25)).expect("generation"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries, bench_generation);
criterion_main!(benches);
