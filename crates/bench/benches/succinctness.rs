//! Succinctness microbenches (Section 5): building the ring answer in
//! both formalisms, translating the σ_{A=B} query, and or-set encoding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urel_relalg::{col, Value};
use urel_uldb::convert::or_set_to_uldb;
use urel_wsd::ring;

fn bench_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring");
    group.sample_size(10);
    for &n in &[8usize, 12] {
        group.bench_with_input(BenchmarkId::new("urel_answer", n), &n, |b, &n| {
            b.iter(|| ring::ring_answer_urel(n).len());
        });
        group.bench_with_input(BenchmarkId::new("wsd_answer", n), &n, |b, &n| {
            b.iter(|| ring::ring_answer_wsd(n).unwrap().total_cells());
        });
        group.bench_with_input(BenchmarkId::new("translated_selection", n), &n, |b, &n| {
            let db = ring::ring_udb(n).unwrap();
            let prepared = db.prepare();
            let q = urel_core::table("r").select(col("a").eq(col("b")));
            b.iter(|| prepared.possible(&q).unwrap().len());
        });
    }
    group.finish();
}

fn bench_orset(c: &mut Criterion) {
    let mut group = c.benchmark_group("orset");
    group.sample_size(10);
    let m = 8usize;
    for &k in &[4usize, 5] {
        let row: Vec<Vec<Value>> = (0..k)
            .map(|a| (0..m).map(|i| Value::Int((a * 100 + i) as i64)).collect())
            .collect();
        let attrs: Vec<String> = (0..k).map(|i| format!("c{i}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        group.bench_with_input(BenchmarkId::new("urel", k), &k, |b, _| {
            b.iter(|| {
                urel_core::construct::or_set_database("r", &attr_refs, std::slice::from_ref(&row))
                    .unwrap()
                    .total_rows()
            });
        });
        group.bench_with_input(BenchmarkId::new("uldb", k), &k, |b, _| {
            b.iter(|| {
                or_set_to_uldb("r", &attr_refs, std::slice::from_ref(&row), 1 << 20)
                    .unwrap()
                    .relation("r")
                    .unwrap()
                    .alt_count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ring, bench_orset);
criterion_main!(benches);
