//! Figure 14 as a criterion bench at the smallest paper setting:
//! attribute-level vs tuple-level vs ULDB evaluation of Q3 (no poss, no
//! minimization).

use criterion::{criterion_group, criterion_main, Criterion};
use urel_core::{table, table_as};
use urel_relalg::{col, lit_str};
use urel_tpch::tuple_level::{expand_tuple_level, to_uldb};
use urel_tpch::{generate, GenParams};

fn q3_no_poss() -> urel_core::UQuery {
    let n1 = table_as("nation", "n1").select(col("n1.n_name").eq(lit_str("GERMANY")));
    let n2 = table_as("nation", "n2").select(col("n2.n_name").eq(lit_str("IRAQ")));
    table("supplier")
        .join(table("lineitem"), col("s_suppkey").eq(col("l_suppkey")))
        .join(table("orders"), col("o_orderkey").eq(col("l_orderkey")))
        .join(table("customer"), col("c_custkey").eq(col("o_custkey")))
        .join(n1, col("s_nationkey").eq(col("n1.n_nationkey")))
        .join(n2, col("c_nationkey").eq(col("n2.n_nationkey")))
        .project(["n1.n_name", "n2.n_name"])
}

fn bench_representations(c: &mut Criterion) {
    let out = generate(&GenParams::paper(0.01, 0.001, 0.1)).expect("generation");
    let q = q3_no_poss();
    let tl = expand_tuple_level(&out.db, 1 << 20, 1 << 24).expect("expansion");
    let uldb0 = to_uldb(&tl).expect("uldb");
    // Both representations are encoded once; iterations share the catalogs.
    let attr = out.db.prepare();
    let tuple = tl.prepare();

    let mut group = c.benchmark_group("fig14_representations");
    group.sample_size(10);
    group.bench_function("attribute_level", |b| {
        b.iter(|| attr.evaluate(&q).unwrap().len());
    });
    group.bench_function("tuple_level", |b| {
        b.iter(|| tuple.evaluate(&q).unwrap().len());
    });
    group.bench_function("uldb", |b| {
        b.iter(|| {
            let mut db = uldb0.clone();
            let rename = |db: &mut urel_uldb::Uldb, src: &str, out: &str, prefix: &str| {
                let mut r = db.relation(src).unwrap().clone();
                r.attrs = r.attrs.iter().map(|a| format!("{prefix}{a}")).collect();
                r.name = out.to_string();
                db.insert_derived(r);
            };
            rename(&mut db, "nation", "n1", "n1_");
            rename(&mut db, "nation", "n2", "n2_");
            db.select("n1", "n1f", &col("n1_n_name").eq(lit_str("GERMANY")))
                .unwrap();
            db.select("n2", "n2f", &col("n2_n_name").eq(lit_str("IRAQ")))
                .unwrap();
            db.join(
                "supplier",
                "lineitem",
                "j1",
                &col("s_suppkey").eq(col("l_suppkey")),
            )
            .unwrap();
            db.join(
                "j1",
                "orders",
                "j2",
                &col("o_orderkey").eq(col("l_orderkey")),
            )
            .unwrap();
            db.join(
                "j2",
                "customer",
                "j3",
                &col("c_custkey").eq(col("o_custkey")),
            )
            .unwrap();
            db.join(
                "j3",
                "n1f",
                "j4",
                &col("s_nationkey").eq(col("n1_n_nationkey")),
            )
            .unwrap();
            db.join(
                "j4",
                "n2f",
                "j5",
                &col("c_nationkey").eq(col("n2_n_nationkey")),
            )
            .unwrap();
            db.relation("j5").unwrap().alt_count()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_representations);
criterion_main!(benches);
