//! Figure 3 ablation as a criterion bench: naive full-merge plans vs
//! optimizer-pushed plans vs late-materialization translation.

use criterion::{criterion_group, criterion_main, Criterion};
use urel_core::TranslateOptions;
use urel_tpch::{generate, q1, GenParams};

fn bench_ablation(c: &mut Criterion) {
    let out = generate(&GenParams::paper(0.01, 0.01, 0.25)).expect("generation");
    let q = q1();
    let naive = TranslateOptions {
        prune_partitions: false,
    };
    let pruned = TranslateOptions {
        prune_partitions: true,
    };
    let prepared = out.db.prepare();
    let mut group = c.benchmark_group("fig03_ablation");
    group.sample_size(10);
    group.bench_function("p1_naive_raw", |b| {
        b.iter(|| prepared.evaluate_with(&q, naive, false).unwrap().len());
    });
    group.bench_function("p2_full_merge_optimized", |b| {
        b.iter(|| prepared.evaluate_with(&q, naive, true).unwrap().len());
    });
    group.bench_function("p3_late_materialization", |b| {
        b.iter(|| prepared.evaluate_with(&q, pruned, true).unwrap().len());
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
