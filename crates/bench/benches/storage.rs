//! Selective-scan benchmarks for the segmented storage modes (PR 6):
//! the same predicate over the plain columnar image and over
//! zone-mapped compressed segments, at high and low selectivity, on a
//! clustered integer column and a dictionary string column. Segmented
//! mode should win on the selective shapes (whole segments skip) and
//! stay competitive on the non-selective ones (decode once, then the
//! same vectorized pipeline).
//!
//! PR 7 adds the disk mode's cold-vs-warm pair on the unprunable scan:
//! the cold run faults every segment through a 2-slot buffer pool (page
//! reads + checksum + decode every iteration), the warm run re-scans
//! with the whole working set resident in a roomy pool — the spread
//! between the two is the price of a page fault.

use criterion::{criterion_group, criterion_main, Criterion};
use urel_relalg::{col, exec, lit_i64, lit_str, Catalog, Plan, Relation, StorageMode, Value};

const ROWS: i64 = 200_000;
const SEG_ROWS: usize = 4 * 1024;

/// `k` sequential (clustered: zone maps prune range predicates), `w` a
/// 8-word dictionary clustered in long runs, `v` scrambled (zone maps
/// cannot prune — the decode-everything baseline).
fn rel() -> Relation {
    const WORDS: [&str; 8] = [
        "ALGERIA", "BRAZIL", "CANADA", "EGYPT", "FRANCE", "GERMANY", "INDIA", "JAPAN",
    ];
    Relation::from_rows(
        ["k", "w", "v"],
        (0..ROWS)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::interned(WORDS[(i / (ROWS / 8)) as usize % 8]),
                    Value::Int(i * 2_654_435_761 % 1_000_003),
                ]
            })
            .collect::<Vec<_>>(),
    )
    .unwrap()
}

fn storage_catalog(mode: StorageMode) -> Catalog {
    let mut c = Catalog::new();
    c.set_threads(1);
    c.set_storage(mode);
    c.set_segment_layout(SEG_ROWS, 8);
    c.insert("t", rel());
    if mode != StorageMode::Plain {
        // Pay the one-time encode outside the timed region.
        let _ = exec::execute(&Plan::scan("t"), &c).unwrap();
    }
    c
}

fn bench_selective_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_scan");
    group.sample_size(10);
    let plain = storage_catalog(StorageMode::Plain);
    let seg = storage_catalog(StorageMode::Segmented);
    // (name, plan): selectivities over the clustered int column, the
    // dictionary column, and the unprunable scrambled column.
    let shapes: Vec<(&str, Plan)> = vec![
        (
            "int_hi_sel", // 1% of rows, 1 of 49 segments survives
            Plan::scan("t").select(col("k").lt(lit_i64(ROWS / 100))),
        ),
        (
            "int_lo_sel", // 90% of rows: skipping buys little
            Plan::scan("t").select(col("k").lt(lit_i64(ROWS * 9 / 10))),
        ),
        (
            "dict_hi_sel", // one word = 1/8 of the clustered runs
            Plan::scan("t").select(col("w").eq(lit_str("EGYPT"))),
        ),
        (
            "scrambled", // zone maps keep every segment
            Plan::scan("t").select(col("v").lt(lit_i64(500_000))),
        ),
    ];
    for (name, plan) in &shapes {
        group.bench_function(format!("plain/{name}"), |b| {
            b.iter(|| exec::execute(plan, &plain).unwrap().len());
        });
        group.bench_function(format!("segmented/{name}"), |b| {
            b.iter(|| exec::execute(plan, &seg).unwrap().len());
        });
    }
    // Disk mode, cold vs warm, on the unprunable scan (every segment
    // read): 49 segments through a 2-slot pool churn on every
    // iteration; through a 64-slot pool the working set stays resident
    // after the priming scan.
    let disk_catalog = |pool: usize| {
        let mut c = Catalog::new();
        c.set_threads(1);
        c.set_storage(StorageMode::Disk);
        c.set_segment_layout(SEG_ROWS, 8);
        c.set_buffer_pool(pool);
        c.insert("t", rel());
        // Pay the encode + segment-file write (and, for the roomy pool,
        // the fault-in) outside the timed region.
        let _ = exec::execute(&Plan::scan("t"), &c).unwrap();
        c
    };
    let cold = disk_catalog(2);
    let warm = disk_catalog(64);
    let scan = Plan::scan("t").select(col("v").lt(lit_i64(500_000)));
    group.bench_function("disk_cold/scrambled", |b| {
        b.iter(|| exec::execute(&scan, &cold).unwrap().len());
    });
    group.bench_function("disk_warm/scrambled", |b| {
        b.iter(|| exec::execute(&scan, &warm).unwrap().len());
    });
    group.finish();
}

criterion_group!(benches, bench_selective_scans);
criterion_main!(benches);
