//! Benchmarks for the Section 4 / Section 7 algorithms: normalization
//! (Algorithm 1), certain answers (Lemma 4.3, direct vs relational), and
//! confidence computation (exact Shannon expansion vs Monte Carlo).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urel_core::certain::{certain_lemma43, certain_lemma43_relational};
use urel_core::normalize::normalize_urelations;
use urel_core::prob::{confidence, confidence_monte_carlo};
use urel_core::{evaluate, table, WsDescriptor};
use urel_wsd::ring;

fn bench_normalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("normalize");
    group.sample_size(10);
    for &n in &[6usize, 10, 14] {
        let u = ring::ring_answer_urel(n);
        let db = ring::ring_udb(n).unwrap();
        group.bench_with_input(BenchmarkId::new("ring_answer", n), &n, |b, _| {
            b.iter(|| {
                normalize_urelations(&[&u], &db.world)
                    .expect("normalization")
                    .relations[0]
                    .len()
            });
        });
    }
    group.finish();
}

fn bench_certain(c: &mut Criterion) {
    let db = urel_core::figure1_database();
    let u = evaluate(&db, &table("r")).expect("full table");
    let n = normalize_urelations(&[&u], &db.world).expect("normalize");
    let mut group = c.benchmark_group("certain");
    group.sample_size(20);
    group.bench_function("lemma43_direct", |b| {
        b.iter(|| certain_lemma43(&n.relations[0], &n.world).unwrap().len());
    });
    group.bench_function("lemma43_relational", |b| {
        b.iter(|| {
            certain_lemma43_relational(&n.relations[0], &n.world)
                .unwrap()
                .len()
        });
    });
    group.finish();
}

fn bench_confidence(c: &mut Criterion) {
    // Descriptor sets shaped like query-result groups: chains of
    // two-variable conjunctions over a 12-variable world.
    let mut w = urel_core::WorldTable::new();
    for i in 1..=12 {
        w.add_var(urel_core::Var(i), vec![0, 1, 2]).unwrap();
    }
    let descs: Vec<WsDescriptor> = (1..=11)
        .map(|i| {
            WsDescriptor::from_pairs([
                (urel_core::Var(i), (i % 3) as u64),
                (urel_core::Var(i + 1), ((i + 1) % 3) as u64),
            ])
            .unwrap()
        })
        .collect();
    let mut group = c.benchmark_group("confidence");
    group.sample_size(20);
    group.bench_function("exact_shannon", |b| {
        b.iter(|| confidence(&descs, &w).unwrap());
    });
    group.bench_function("monte_carlo_10k", |b| {
        b.iter(|| confidence_monte_carlo(&descs, &w, 10_000, 7).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_normalize, bench_certain, bench_confidence);
criterion_main!(benches);
