//! The wire protocol: one JSON object per line, in both directions.
//!
//! Requests:
//!
//! ```text
//! {"op":"query","id":1,"query":"from s | select a | possible"}
//! {"op":"stats","id":2}
//! {"op":"ping","id":3}
//! ```
//!
//! Responses always echo `id` (or `null` if the request had none) and
//! carry `"ok"`. A successful query response holds the answer relation
//! (`columns` + `rows`, or `rows` of `[tuple, p]` pairs for
//! `confidence` queries, or `plan` text for `explain`); a failed one
//! names the error class in `"kind"` — `"parse"`, `"lower"`,
//! `"engine"`, `"cancelled"`, `"shed"` or `"proto"` — with parse and
//! lowering errors additionally carrying the source `"span"`.
//!
//! [`render_answers`] is the single place answer bytes are produced;
//! the server-vs-library differential test calls it directly to prove
//! the TCP path returns exactly the bytes the in-process path would.

use crate::json::Json;
use urel_ql::Answers;
use urel_relalg::{ExecStats, Relation, Value};

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping {
        /// Echoed request id.
        id: Option<i64>,
    },
    /// Server + session statistics.
    Stats {
        /// Echoed request id.
        id: Option<i64>,
    },
    /// Compile and run (or explain) a pipeline statement.
    Query {
        /// Echoed request id.
        id: Option<i64>,
        /// The statement text.
        text: String,
    },
}

impl Request {
    /// Decode one request line. Errors are protocol errors (malformed
    /// JSON, missing fields) — the caller reports them with kind
    /// `"proto"` and keeps the session open.
    pub fn decode(line: &str) -> Result<Request, String> {
        let v = crate::json::parse(line)?;
        let id = v.get("id").and_then(Json::as_i64);
        match v.get("op").and_then(Json::as_str) {
            Some("ping") => Ok(Request::Ping { id }),
            Some("stats") => Ok(Request::Stats { id }),
            Some("query") => {
                let text = v
                    .get("query")
                    .and_then(Json::as_str)
                    .ok_or("`query` op needs a string `query` field")?
                    .to_string();
                Ok(Request::Query { id, text })
            }
            Some(other) => Err(format!("unknown op `{other}`")),
            None => Err("request needs a string `op` field".into()),
        }
    }

    /// The request id, for echoing.
    pub fn id(&self) -> Option<i64> {
        match self {
            Request::Ping { id } | Request::Stats { id } | Request::Query { id, .. } => *id,
        }
    }
}

fn id_json(id: Option<i64>) -> Json {
    match id {
        Some(v) => Json::Int(v),
        None => Json::Null,
    }
}

/// A successful response skeleton: `{"id":…,"ok":true,…fields}`.
pub fn ok_response(id: Option<i64>, fields: Vec<(String, Json)>) -> Json {
    let mut obj = vec![
        ("id".to_string(), id_json(id)),
        ("ok".to_string(), Json::Bool(true)),
    ];
    obj.extend(fields);
    Json::Obj(obj)
}

/// An error response: `{"id":…,"ok":false,"kind":…,"error":…[,"span"]}`.
pub fn err_response(
    id: Option<i64>,
    kind: &str,
    message: &str,
    span: Option<(usize, usize)>,
) -> Json {
    let mut obj = vec![
        ("id".to_string(), id_json(id)),
        ("ok".to_string(), Json::Bool(false)),
        ("kind".to_string(), Json::Str(kind.to_string())),
        ("error".to_string(), Json::Str(message.to_string())),
    ];
    if let Some((s, e)) = span {
        obj.push((
            "span".to_string(),
            Json::Arr(vec![Json::Int(s as i64), Json::Int(e as i64)]),
        ));
    }
    Json::Obj(obj)
}

/// Classify a frontend error into a response. Parse/lower errors carry
/// their span; engine errors distinguish deadline cancellation.
pub fn err_response_for(id: Option<i64>, e: &urel_ql::Error) -> Json {
    match e {
        urel_ql::Error::Parse { message, span } => err_response(
            id,
            "parse",
            &format!("parse error at {span}: {message}"),
            Some((span.start, span.end)),
        ),
        urel_ql::Error::Lower { message, span } => err_response(
            id,
            "lower",
            &format!("lowering error at {span}: {message}"),
            Some((span.start, span.end)),
        ),
        urel_ql::Error::Engine(inner) => {
            let kind = match inner {
                urel_core::Error::Engine(urel_relalg::Error::Cancelled(_)) => "cancelled",
                _ => "engine",
            };
            err_response(id, kind, &inner.to_string(), None)
        }
    }
}

/// Encode a relation value for the wire.
fn value_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Str(s) => Json::Str(s.to_string()),
    }
}

fn relation_fields(rel: &Relation) -> Vec<(String, Json)> {
    let columns = Json::Arr(
        rel.schema()
            .columns()
            .iter()
            .map(|c| Json::Str(c.to_string()))
            .collect(),
    );
    let rows = Json::Arr(
        rel.rows()
            .iter()
            .map(|r| Json::Arr(r.iter().map(value_json).collect()))
            .collect(),
    );
    vec![
        ("columns".to_string(), columns),
        ("rows".to_string(), rows),
        ("row_count".to_string(), Json::Int(rel.len() as i64)),
    ]
}

fn stats_fields(stats: &ExecStats) -> Json {
    Json::Obj(vec![
        ("buffers".to_string(), Json::Int(stats.buffers as i64)),
        (
            "buffered_rows".to_string(),
            Json::Int(stats.buffered_rows as i64),
        ),
    ])
}

/// Render the answers of an executed statement as the *exact* response
/// the server sends. Shared between the serving loop and the
/// differential tests: equal inputs produce equal bytes.
pub fn render_answers(id: Option<i64>, answers: &Answers) -> Json {
    match answers {
        Answers::Plain { rel, stats } => {
            let mut fields = relation_fields(rel);
            fields.push(("stats".to_string(), stats_fields(stats)));
            ok_response(id, fields)
        }
        Answers::WithConfidence { rows } => {
            let items = Json::Arr(
                rows.iter()
                    .map(|(tuple, p)| {
                        Json::Arr(vec![
                            Json::Arr(tuple.iter().map(value_json).collect()),
                            Json::Num(*p),
                        ])
                    })
                    .collect(),
            );
            ok_response(
                id,
                vec![
                    ("rows".to_string(), items),
                    ("row_count".to_string(), Json::Int(rows.len() as i64)),
                ],
            )
        }
    }
}

/// Render an `explain` response.
pub fn render_explain(id: Option<i64>, plan: &str) -> Json {
    ok_response(id, vec![("plan".to_string(), Json::Str(plan.to_string()))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_decoding() {
        let r = Request::decode(r#"{"op":"query","id":3,"query":"from r"}"#).unwrap();
        assert_eq!(
            r,
            Request::Query {
                id: Some(3),
                text: "from r".into()
            }
        );
        assert_eq!(
            Request::decode(r#"{"op":"ping"}"#).unwrap(),
            Request::Ping { id: None }
        );
        assert!(Request::decode(r#"{"op":"nope"}"#).is_err());
        assert!(Request::decode(r#"{"op":"query"}"#).is_err());
        assert!(Request::decode("not json").is_err());
    }

    #[test]
    fn error_responses_carry_kind_and_span() {
        let e = urel_ql::compile("from r | where a = ").unwrap_err();
        let resp = err_response_for(Some(1), &e).render();
        assert!(resp.contains(r#""ok":false"#), "{resp}");
        assert!(resp.contains(r#""kind":"parse""#), "{resp}");
        assert!(resp.contains(r#""span":[19,19]"#), "{resp}");
    }

    #[test]
    fn shed_response_shape() {
        let resp =
            err_response(None, "shed", "shed: admission queue full (2 waiting)", None).render();
        assert!(
            resp.starts_with(r#"{"id":null,"ok":false,"kind":"shed""#),
            "{resp}"
        );
    }
}
