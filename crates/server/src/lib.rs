//! The U-relations session server: newline-delimited JSON over TCP.
//!
//! One process serves one [`UDatabase`]. The database is encoded into
//! a [`Catalog`] **once**; every session clones it (cheap — base
//! relations are `Arc`-shared) into its own
//! [`PreparedDb`](urel_core::translate::PreparedDb), so sessions share
//! base data but keep private prepared-statement plan caches.
//!
//! Execution is bounded by an [`AdmissionGate`] shared by all
//! sessions: at most `max_concurrent` statements execute at once, at
//! most `max_queue` wait, and everything else — including requests
//! whose deadline expires while queued — is shed with a `"shed"`
//! response *before* touching any execution resource (task-pool
//! workers, buffer-pool leases, spill directories).
//!
//! Configuration comes from `RELALG_SERVER_*` (and the engine's
//! `RELALG_*`) environment knobs; see [`ServerConfig::from_env`].

#![warn(missing_docs)]

pub mod json;
pub mod proto;

pub use json::Json;
pub use proto::{
    err_response, err_response_for, ok_response, render_answers, render_explain, Request,
};

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use urel_core::translate::PreparedDb;
use urel_core::udb::UDatabase;
use urel_relalg::admission::{self, AdmissionGate};
use urel_relalg::{Catalog, EngineConfig};

/// Server configuration. [`ServerConfig::from_env`] reads the
/// `RELALG_SERVER_*` knobs; tests construct values directly.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`RELALG_SERVER_ADDR`, default `127.0.0.1:0` —
    /// port 0 lets the OS pick; the bound port is in
    /// [`Server::local_addr`] and on the binary's stdout).
    pub addr: String,
    /// Statements executing concurrently across all sessions
    /// (`RELALG_SERVER_MAX_CONCURRENT`, default: available cores).
    pub max_concurrent: usize,
    /// Statements allowed to wait for an execution slot
    /// (`RELALG_SERVER_QUEUE`, default 16; 0 = shed the moment every
    /// slot is busy).
    pub max_queue: usize,
    /// Per-request deadline, measured from request receipt and covering
    /// both the admission wait and execution (`RELALG_DEADLINE_MS`
    /// through the engine config; `None` = no limit).
    pub deadline: Option<Duration>,
}

impl ServerConfig {
    /// Read configuration from the environment.
    pub fn from_env() -> ServerConfig {
        let addr = std::env::var("RELALG_SERVER_ADDR")
            .ok()
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "127.0.0.1:0".to_string());
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let max_concurrent = env_usize("RELALG_SERVER_MAX_CONCURRENT").unwrap_or(cores);
        let max_queue = env_usize("RELALG_SERVER_QUEUE").unwrap_or(16);
        ServerConfig {
            addr,
            max_concurrent,
            max_queue,
            deadline: EngineConfig::default().deadline,
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// A running server. Dropping it does **not** stop the accept loop —
/// call [`Server::shutdown`].
pub struct Server {
    local_addr: SocketAddr,
    gate: Arc<AdmissionGate>,
    stop: Arc<AtomicBool>,
    sessions: Arc<AtomicUsize>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared admission gate (stats are visible here and via the
    /// protocol's `stats` op).
    pub fn gate(&self) -> &Arc<AdmissionGate> {
        &self.gate
    }

    /// Sessions accepted over the server's lifetime.
    pub fn session_count(&self) -> usize {
        self.sessions.load(Ordering::Relaxed)
    }

    /// Stop accepting connections and join the accept loop. Sessions
    /// already connected finish their current request and then shut
    /// down on their next read.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Bind and serve `udb` in background threads (one accept loop, one
/// thread per session). The database is encoded once here; sessions
/// alias it.
pub fn serve(udb: Arc<UDatabase>, config: ServerConfig) -> std::io::Result<Server> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let shared_catalog = udb.to_catalog();
    let gate = AdmissionGate::new(config.max_concurrent, config.max_queue);
    let stop = Arc::new(AtomicBool::new(false));
    let sessions = Arc::new(AtomicUsize::new(0));

    let accept_thread = {
        let gate = Arc::clone(&gate);
        let stop = Arc::clone(&stop);
        let sessions = Arc::clone(&sessions);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                sessions.fetch_add(1, Ordering::Relaxed);
                let udb = Arc::clone(&udb);
                let catalog = shared_catalog.clone();
                let gate = Arc::clone(&gate);
                let config = config.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    // A session dying (protocol error, broken pipe)
                    // must not take the server with it.
                    let _ = session(&udb, catalog, &gate, &config, &stop, stream);
                });
            }
        })
    };

    Ok(Server {
        local_addr,
        gate,
        stop,
        sessions,
        accept_thread: Some(accept_thread),
    })
}

/// One session: read request lines, answer each with one response
/// line. Protocol errors answer with `"kind":"proto"` and keep the
/// session; I/O errors end it.
fn session(
    udb: &UDatabase,
    catalog: Catalog,
    gate: &Arc<AdmissionGate>,
    config: &ServerConfig,
    stop: &AtomicBool,
    stream: TcpStream,
) -> std::io::Result<()> {
    let mut prepared = PreparedDb::with_catalog(udb, catalog);
    // Per-session memory: an equal share of the global budget per
    // execution slot, so `max_concurrent` admitted statements together
    // stay inside `RELALG_MEM_BUDGET`.
    let global_budget = prepared.catalog().config().mem_budget;
    if global_budget != usize::MAX {
        prepared.set_mem_budget((global_budget / gate.max_concurrent()).max(1));
    }
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match Request::decode(&line) {
            Err(msg) => err_response(None, "proto", &msg, None),
            Ok(Request::Ping { id }) => {
                ok_response(id, vec![("pong".to_string(), Json::Bool(true))])
            }
            Ok(Request::Stats { id }) => stats_response(id, gate, &prepared),
            Ok(Request::Query { id, text }) => handle_query(&mut prepared, gate, config, id, &text),
        };
        writer.write_all(response.render().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

fn stats_response(id: Option<i64>, gate: &Arc<AdmissionGate>, prepared: &PreparedDb<'_>) -> Json {
    let s = gate.stats();
    let admission = Json::Obj(vec![
        ("admitted".to_string(), Json::Int(s.admitted as i64)),
        ("queued".to_string(), Json::Int(s.queued as i64)),
        (
            "shed_queue_full".to_string(),
            Json::Int(s.shed_queue_full as i64),
        ),
        (
            "shed_deadline".to_string(),
            Json::Int(s.shed_deadline as i64),
        ),
        ("shed".to_string(), Json::Int(s.shed() as i64)),
        ("in_flight".to_string(), Json::Int(s.in_flight as i64)),
        (
            "peak_in_flight".to_string(),
            Json::Int(s.peak_in_flight as i64),
        ),
        (
            "max_concurrent".to_string(),
            Json::Int(gate.max_concurrent() as i64),
        ),
        ("max_queue".to_string(), Json::Int(gate.max_queue() as i64)),
    ]);
    ok_response(
        id,
        vec![
            ("admission".to_string(), admission),
            (
                "cached_plans".to_string(),
                Json::Int(prepared.cached_plan_count() as i64),
            ),
            (
                "total_shed".to_string(),
                Json::Int(admission_total_shed() as i64),
            ),
        ],
    )
}

fn admission_total_shed() -> usize {
    admission::total_shed()
}

/// Compile, admit, execute. The admission acquire happens strictly
/// before any execution resource is touched; a shed (queue full, or
/// deadline expired while queued) therefore leaks nothing — pinned by
/// `tests/server.rs` with `fault::assert_no_leaks`.
fn handle_query(
    prepared: &mut PreparedDb<'_>,
    gate: &Arc<AdmissionGate>,
    config: &ServerConfig,
    id: Option<i64>,
    text: &str,
) -> Json {
    let lowered = match urel_ql::compile(text) {
        Ok(l) => l,
        Err(e) => return err_response_for(id, &e),
    };
    let deadline = config.deadline.map(|d| Instant::now() + d);
    let permit = match gate.acquire(deadline) {
        Ok(p) => p,
        Err(e) => {
            admission::note_shed(1);
            return err_response(id, "shed", &e.to_string(), None);
        }
    };
    // Whatever deadline budget the queue wait left over bounds the
    // execution; zero remaining cancels at the first batch boundary.
    prepared.set_deadline(deadline.map(|d| d.saturating_duration_since(Instant::now())));
    let out = if lowered.explain {
        prepared
            .explain(&lowered.query)
            .map(|plan| render_explain(id, &plan))
            .map_err(urel_ql::Error::from)
    } else {
        urel_ql::execute(prepared, &lowered).map(|a| render_answers(id, &a))
    };
    drop(permit);
    match out {
        Ok(json) => json,
        Err(e) => err_response_for(id, &e),
    }
}

/// A blocking protocol client: one request line out, one response line
/// back. Used by the load harness and the differential tests.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: i64,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            next_id: 0,
        })
    }

    /// Send one raw request line, return the raw response line
    /// (newline stripped) — the byte-exact form the differential tests
    /// compare against [`render_answers`] output.
    pub fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while resp.ends_with('\n') || resp.ends_with('\r') {
            resp.pop();
        }
        Ok(resp)
    }

    /// Send a `query` op with a fresh id; returns `(id, raw response)`.
    pub fn query_raw(&mut self, text: &str) -> std::io::Result<(i64, String)> {
        self.next_id += 1;
        let id = self.next_id;
        let req = Json::Obj(vec![
            ("op".to_string(), Json::Str("query".to_string())),
            ("id".to_string(), Json::Int(id)),
            ("query".to_string(), Json::Str(text.to_string())),
        ]);
        Ok((id, self.round_trip(&req.render())?))
    }

    /// Send a `query` op and parse the response.
    pub fn query(&mut self, text: &str) -> std::io::Result<Json> {
        let (_, raw) = self.query_raw(text)?;
        json::parse(&raw).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Send a `stats` op and parse the response.
    pub fn stats(&mut self) -> std::io::Result<Json> {
        self.next_id += 1;
        let req = Json::Obj(vec![
            ("op".to_string(), Json::Str("stats".to_string())),
            ("id".to_string(), Json::Int(self.next_id)),
        ]);
        let raw = self.round_trip(&req.render())?;
        json::parse(&raw).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}
