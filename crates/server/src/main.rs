//! The `urel-server` binary: build a database, bind, serve until
//! killed.
//!
//! Knobs (all environment variables):
//!
//! - `RELALG_SERVER_DB` — which database to serve: `figure1` (the
//!   paper's running example, the default) or `tpch:<scale>[:<x>]`
//!   (uncertain TPC-H at scale factor `<scale>` with uncertainty ratio
//!   `<x>`, default 0.1).
//! - `RELALG_SERVER_ADDR`, `RELALG_SERVER_MAX_CONCURRENT`,
//!   `RELALG_SERVER_QUEUE` — see [`urel_server::ServerConfig`].
//! - Engine knobs (`RELALG_THREADS`, `RELALG_MEM_BUDGET`,
//!   `RELALG_STORAGE`, `RELALG_DEADLINE_MS`, …) apply to every
//!   session.
//!
//! Prints `listening on <addr>` to stdout once bound — with port 0 the
//! line is how harnesses learn the real port.

use std::sync::Arc;
use urel_core::udb::{figure1_database, UDatabase};

fn build_db(spec: &str) -> Result<UDatabase, String> {
    if spec == "figure1" || spec.is_empty() {
        return Ok(figure1_database());
    }
    if let Some(rest) = spec.strip_prefix("tpch:") {
        let mut parts = rest.split(':');
        let scale: f64 = parts
            .next()
            .unwrap_or("0.1")
            .parse()
            .map_err(|_| format!("bad tpch scale in `{spec}`"))?;
        let x: f64 = match parts.next() {
            Some(s) => s
                .parse()
                .map_err(|_| format!("bad tpch uncertainty in `{spec}`"))?,
            None => 0.1,
        };
        let params = urel_tpch::GenParams::paper(scale, x, 0.5);
        let gen = urel_tpch::generate(&params).map_err(|e| e.to_string())?;
        return Ok(gen.db);
    }
    Err(format!(
        "unknown RELALG_SERVER_DB `{spec}` (expected `figure1` or `tpch:<scale>[:<x>]`)"
    ))
}

fn main() {
    let spec = std::env::var("RELALG_SERVER_DB").unwrap_or_default();
    let udb = match build_db(&spec) {
        Ok(db) => Arc::new(db),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let config = urel_server::ServerConfig::from_env();
    let server = match urel_server::serve(udb, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            std::process::exit(2);
        }
    };
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
