//! A minimal JSON codec — the workspace builds offline, so the wire
//! format is hand-rolled rather than pulled from a registry crate.
//!
//! Integers and floats are kept distinct ([`Json::Int`] vs
//! [`Json::Num`]) so relation values round-trip exactly; rendering is
//! deterministic (object keys keep insertion order), which the
//! server-vs-library differential tests rely on.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number that lexed as an integer.
    Int(i64),
    /// A number with a fraction or exponent.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, duplicate keys not merged.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// `true` if this is the boolean `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, Json::Bool(true))
    }

    /// Render to compact JSON text (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // Rust's shortest round-trip formatting; always
                    // distinguishable from an Int because a finite f64
                    // without a fraction renders with a trailing `.0`?
                    // No — `1f64` renders as `1`. That is fine: the
                    // reader may reparse it as Int, and numeric
                    // comparisons treat them alike.
                    let _ = write!(out, "{v}");
                } else {
                    // JSON has no NaN/Inf; encode as null like
                    // everything else does.
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON value from `src` (must consume the whole input up to
/// trailing whitespace). Errors are plain strings with a byte offset.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = P {
        bytes: src.as_bytes(),
        src,
        pos: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct P<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            None => Err("unexpected end of input".into()),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.ws();
                    items.push(self.value()?);
                    self.ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.ws();
                    if self.bytes.get(self.pos) != Some(&b':') {
                        return Err(format!("expected `:` at offset {}", self.pos));
                    }
                    self.pos += 1;
                    self.ws();
                    let val = self.value()?;
                    fields.push((key, val));
                    self.ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(format!(
                "unexpected byte `{}` at offset {}",
                b as char, self.pos
            )),
        }
    }

    fn lit(&mut self, text: &str, v: Json) -> Result<Json, String> {
        if self.src[self.pos..].starts_with(text) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(format!("expected `\"` at offset {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            // Surrogate pairs are not supported — the
                            // protocol never emits them (render uses
                            // raw UTF-8). Reject rather than mangle.
                            let c = char::from_u32(cp).ok_or("\\u escape is not a scalar value")?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let c = self.src[self.pos..].chars().next().expect("in-bounds");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            is_float = true;
            self.pos += 1;
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("malformed number at offset {start}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("malformed number at offset {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let src = r#"{"op":"query","id":7,"query":"from r | where a = 'x''y'","eps":0.05,"flags":[true,false,null],"n":-3}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("query"));
        assert_eq!(v.get("id").and_then(Json::as_i64), Some(7));
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.render(), r#""a\"b\\c\nd\u0001""#);
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn numbers_int_vs_float() {
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-1").unwrap(), Json::Int(-1));
        assert_eq!(parse("0.5").unwrap(), Json::Num(0.5));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("'single'").is_err());
    }
}
