#!/usr/bin/env python3
"""Record and diff benchmark baselines.

The criterion harness prints lines of the form

    bench <group>/<id> ... median <duration> (<n> samples)

This script either records them into a ``BENCH_<name>.json`` baseline or
diffs a fresh run against a checked-in baseline, flagging regressions
beyond a threshold ratio.

Usage:
    # Record a baseline (reads bench output from stdin):
    UREL_BENCH_SAMPLES=7 cargo bench --bench queries | \
        scripts/bench_diff.py record BENCH_queries.json

    # Diff a fresh run against the baseline (exit 1 on regression):
    UREL_BENCH_SAMPLES=7 cargo bench --bench queries | \
        scripts/bench_diff.py diff BENCH_queries.json --threshold 2.5

Wall-clock medians on shared machines are noisy; the default threshold
is deliberately loose (2.5x) so the CI step catches order-of-magnitude
regressions without flaking on scheduler jitter.
"""

import json
import os
import re
import sys
from datetime import date

LINE = re.compile(
    r"^bench\s+(?P<name>\S+)\s+\.\.\.\s+median\s+(?P<dur>[0-9.]+)(?P<unit>ns|µs|us|ms|s)\b"
)

UNIT_SECONDS = {"ns": 1e-9, "µs": 1e-6, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def parse_bench_output(lines):
    """Parse criterion output lines into {bench name: seconds}."""
    out = {}
    for line in lines:
        m = LINE.match(line.strip())
        if m:
            out[m.group("name")] = float(m.group("dur")) * UNIT_SECONDS[m.group("unit")]
    return out


def record(baseline_path, benches):
    payload = {
        "recorded": date.today().isoformat(),
        "note": "median wall-clock seconds per bench (UREL_BENCH_SAMPLES samples)",
        "benches": benches,
    }
    with open(baseline_path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"recorded {len(benches)} benches into {baseline_path}")
    return 0


def write_step_summary(baseline_path, rows, verdict):
    """Append the per-query diff table to $GITHUB_STEP_SUMMARY (markdown),
    when running under GitHub Actions."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a") as f:
        f.write(f"### Bench diff vs `{baseline_path}`\n\n")
        f.write("| bench | baseline (s) | current (s) | ratio |\n")
        f.write("|---|---:|---:|---:|\n")
        for name, base, cur, ratio in rows:
            f.write(f"| `{name}` | {base} | {cur} | {ratio} |\n")
        f.write(f"\n{verdict}\n\n")


def diff(baseline_path, benches, threshold):
    with open(baseline_path) as f:
        baseline = json.load(f)["benches"]
    regressions = []
    rows = []
    width = max((len(n) for n in baseline), default=10)
    print(f"{'bench':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name, base in sorted(baseline.items()):
        cur = benches.get(name)
        if cur is None:
            print(f"{name:<{width}}  {base:>12.6f}  {'MISSING':>12}  -")
            regressions.append((name, "missing"))
            rows.append((name, f"{base:.6f}", "MISSING", "-"))
            continue
        ratio = cur / base if base > 0 else float("inf")
        flag = " <-- REGRESSION" if ratio > threshold else ""
        print(f"{name:<{width}}  {base:>12.6f}  {cur:>12.6f}  {ratio:5.2f}x{flag}")
        rows.append((name, f"{base:.6f}", f"{cur:.6f}", f"{ratio:.2f}x{flag and ' ⚠️'}"))
        if ratio > threshold:
            regressions.append((name, f"{ratio:.2f}x"))
    # A bench name the baseline has never seen is an error, not a
    # footnote: silently skipping it would let renamed (or brand-new)
    # queries run unguarded until someone notices. Re-record the
    # baseline when adding or renaming benches.
    for name in sorted(set(benches) - set(baseline)):
        print(f"{name:<{width}}  {'NOT IN BASELINE':>12}  {benches[name]:>12.6f}  -")
        regressions.append((name, "not in baseline"))
        rows.append((name, "NOT IN BASELINE", f"{benches[name]:.6f}", "-"))
    if regressions:
        listed = ", ".join(f"{name} ({why})" for name, why in regressions)
        verdict = f"**{len(regressions)} regression(s) beyond {threshold}x:** {listed}"
        print(f"\n{len(regressions)} regression(s) beyond {threshold}x: {listed}")
        write_step_summary(baseline_path, rows, verdict)
        return 1
    verdict = f"no regressions beyond {threshold}x"
    print(f"\n{verdict}")
    write_step_summary(baseline_path, rows, verdict)
    return 0


def main(argv):
    if len(argv) < 3 or argv[1] not in ("record", "diff"):
        print(__doc__)
        return 2
    mode, baseline_path = argv[1], argv[2]
    threshold = 2.5
    if "--threshold" in argv:
        threshold = float(argv[argv.index("--threshold") + 1])
    benches = parse_bench_output(sys.stdin)
    if not benches:
        print("no `bench ... median ...` lines found on stdin", file=sys.stderr)
        return 2
    if mode == "record":
        return record(baseline_path, benches)
    return diff(baseline_path, benches, threshold)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
