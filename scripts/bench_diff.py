#!/usr/bin/env python3
"""Record and diff benchmark baselines.

The criterion harness prints lines of the form

    bench <group>/<id> ... median <duration> (<n> samples)

This script either records them into a ``BENCH_<name>.json`` baseline or
diffs a fresh run against a checked-in baseline, flagging regressions
beyond a threshold ratio.

Usage:
    # Record a baseline (reads bench output from stdin):
    UREL_BENCH_SAMPLES=7 cargo bench --bench queries | \
        scripts/bench_diff.py record BENCH_queries.json

    # Diff a fresh run against the baseline (exit 1 on regression):
    UREL_BENCH_SAMPLES=7 cargo bench --bench queries | \
        scripts/bench_diff.py diff BENCH_queries.json --threshold 2.5

    # A/B two captured runs of the SAME binary (exit 1 when the
    # geometric-mean ratio B/A exceeds 1 + tolerance). CI uses this as
    # the fault-layer overhead guard: run A with fault injection
    # disabled (no RELALG_FAULTS), run B with an injector armed at rate
    # zero (RELALG_FAULTS=<seed>:0, plumbed through every I/O edge but
    # never firing) — the pair must agree within 2%.
    cargo bench --bench queries > /tmp/a.txt
    RELALG_FAULTS=7:0 cargo bench --bench queries > /tmp/b.txt
    scripts/bench_diff.py ab /tmp/a.txt /tmp/b.txt --tolerance 0.02

Wall-clock medians on shared machines are noisy; the baseline-diff
default threshold is deliberately loose (2.5x) so the CI step catches
order-of-magnitude regressions without flaking on scheduler jitter. The
``ab`` mode gates only the geometric mean across all benches — per-bench
jitter averages out, so a much tighter 2% bound holds for back-to-back
runs of the same binary.
"""

import json
import math
import os
import re
import sys
from datetime import date

LINE = re.compile(
    r"^bench\s+(?P<name>\S+)\s+\.\.\.\s+median\s+(?P<dur>[0-9.]+)(?P<unit>ns|µs|us|ms|s)\b"
)

UNIT_SECONDS = {"ns": 1e-9, "µs": 1e-6, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def parse_bench_output(lines):
    """Parse criterion output lines into {bench name: seconds}."""
    out = {}
    for line in lines:
        m = LINE.match(line.strip())
        if m:
            out[m.group("name")] = float(m.group("dur")) * UNIT_SECONDS[m.group("unit")]
    return out


def record(baseline_path, benches):
    payload = {
        "recorded": date.today().isoformat(),
        "note": "median wall-clock seconds per bench (UREL_BENCH_SAMPLES samples)",
        "benches": benches,
    }
    with open(baseline_path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"recorded {len(benches)} benches into {baseline_path}")
    return 0


def write_step_summary(baseline_path, rows, verdict):
    """Append the per-query diff table to $GITHUB_STEP_SUMMARY (markdown),
    when running under GitHub Actions."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a") as f:
        f.write(f"### Bench diff vs `{baseline_path}`\n\n")
        f.write("| bench | baseline (s) | current (s) | ratio |\n")
        f.write("|---|---:|---:|---:|\n")
        for name, base, cur, ratio in rows:
            f.write(f"| `{name}` | {base} | {cur} | {ratio} |\n")
        f.write(f"\n{verdict}\n\n")


def diff(baseline_path, benches, threshold):
    with open(baseline_path) as f:
        baseline = json.load(f)["benches"]
    regressions = []
    rows = []
    width = max((len(n) for n in baseline), default=10)
    print(f"{'bench':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name, base in sorted(baseline.items()):
        cur = benches.get(name)
        if cur is None:
            print(f"{name:<{width}}  {base:>12.6f}  {'MISSING':>12}  -")
            regressions.append((name, "missing"))
            rows.append((name, f"{base:.6f}", "MISSING", "-"))
            continue
        ratio = cur / base if base > 0 else float("inf")
        flag = " <-- REGRESSION" if ratio > threshold else ""
        print(f"{name:<{width}}  {base:>12.6f}  {cur:>12.6f}  {ratio:5.2f}x{flag}")
        rows.append((name, f"{base:.6f}", f"{cur:.6f}", f"{ratio:.2f}x{flag and ' ⚠️'}"))
        if ratio > threshold:
            regressions.append((name, f"{ratio:.2f}x"))
    # A bench name the baseline has never seen is an error, not a
    # footnote: silently skipping it would let renamed (or brand-new)
    # queries run unguarded until someone notices. Re-record the
    # baseline when adding or renaming benches.
    for name in sorted(set(benches) - set(baseline)):
        print(f"{name:<{width}}  {'NOT IN BASELINE':>12}  {benches[name]:>12.6f}  -")
        regressions.append((name, "not in baseline"))
        rows.append((name, "NOT IN BASELINE", f"{benches[name]:.6f}", "-"))
    if regressions:
        listed = ", ".join(f"{name} ({why})" for name, why in regressions)
        verdict = f"**{len(regressions)} regression(s) beyond {threshold}x:** {listed}"
        print(f"\n{len(regressions)} regression(s) beyond {threshold}x: {listed}")
        write_step_summary(baseline_path, rows, verdict)
        return 1
    verdict = f"no regressions beyond {threshold}x"
    print(f"\n{verdict}")
    write_step_summary(baseline_path, rows, verdict)
    return 0


def ab(path_a, path_b, tolerance):
    """Compare two captured runs of the same bench binary: fail when the
    geometric mean of per-bench ratios B/A exceeds ``1 + tolerance``."""
    with open(path_a) as f:
        a = parse_bench_output(f)
    with open(path_b) as f:
        b = parse_bench_output(f)
    if not a or not b:
        print("no `bench ... median ...` lines found in an input", file=sys.stderr)
        return 2
    # Both files come from the same binary run back to back, so a name
    # present on one side only means a truncated or mismatched capture —
    # an error, not a footnote.
    if set(a) != set(b):
        odd = ", ".join(sorted(set(a) ^ set(b)))
        print(f"bench sets differ between runs: {odd}", file=sys.stderr)
        return 2
    width = max(len(n) for n in a)
    print(f"{'bench':<{width}}  {'A':>12}  {'B':>12}  ratio")
    ratios = []
    rows = []
    for name in sorted(a):
        ratio = b[name] / a[name] if a[name] > 0 else float("inf")
        ratios.append(ratio)
        print(f"{name:<{width}}  {a[name]:>12.6f}  {b[name]:>12.6f}  {ratio:5.3f}x")
        rows.append((name, f"{a[name]:.6f}", f"{b[name]:.6f}", f"{ratio:.3f}x"))
    gm = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    ok = gm <= 1.0 + tolerance
    verdict = (
        f"geometric-mean ratio {gm:.4f}x over {len(ratios)} benches "
        f"({'within' if ok else 'EXCEEDS'} 1 + {tolerance:.3f})"
    )
    print(f"\n{verdict}")
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if path:
        with open(path, "a") as f:
            f.write(f"### Bench A/B `{path_a}` vs `{path_b}`\n\n")
            f.write("| bench | A (s) | B (s) | ratio |\n|---|---:|---:|---:|\n")
            for name, va, vb, ratio in rows:
                f.write(f"| `{name}` | {va} | {vb} | {ratio} |\n")
            f.write(f"\n{verdict}\n\n")
    return 0 if ok else 1


def main(argv):
    if len(argv) < 3 or argv[1] not in ("record", "diff", "ab"):
        print(__doc__)
        return 2
    if argv[1] == "ab":
        if len(argv) < 4:
            print(__doc__)
            return 2
        tolerance = 0.02
        if "--tolerance" in argv:
            tolerance = float(argv[argv.index("--tolerance") + 1])
        return ab(argv[2], argv[3], tolerance)
    mode, baseline_path = argv[1], argv[2]
    threshold = 2.5
    if "--threshold" in argv:
        threshold = float(argv[argv.index("--threshold") + 1])
    benches = parse_bench_output(sys.stdin)
    if not benches:
        print("no `bench ... median ...` lines found on stdin", file=sys.stderr)
        return 2
    if mode == "record":
        return record(baseline_path, benches)
    return diff(baseline_path, benches, threshold)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
