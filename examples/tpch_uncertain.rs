//! The Section 6 pipeline in miniature: generate an uncertain TPC-H
//! database, inspect its characteristics (the Figure 9 statistics), run
//! the three experiment queries, and look at a translated plan.
//!
//! Run with: `cargo run --release --example tpch_uncertain`

use std::time::Instant;
use u_relations::core::{possible, translate};
use u_relations::relalg::{explain, optimizer};
use u_relations::tpch::{generate, q1, q2, q3, GenParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Scale 0.05, 1% uncertain fields, medium correlation.
    let params = GenParams::paper(0.05, 0.01, 0.25);
    let t0 = Instant::now();
    let out = generate(&params)?;
    println!(
        "generated in {:?}: {} U-relation rows, {} variables,",
        t0.elapsed(),
        out.db.total_rows(),
        out.stats.variables
    );
    println!(
        "  {} uncertain fields of {} total, 10^{:.1} worlds, {:.2} MB",
        out.stats.uncertain_fields,
        out.stats.total_fields,
        out.stats.worlds_log10,
        out.stats.size_mb()
    );
    println!("  DFC histogram: {:?}", out.stats.dfc_histogram);

    // Validate Definition 2.2 on the generated database.
    out.db.validate()?;

    for (name, q) in [("Q1", q1()), ("Q2", q2()), ("Q3", q3())] {
        let t = Instant::now();
        let answer = possible(&out.db, &q)?;
        println!(
            "{name}: {} possible answers in {:?}",
            answer.len(),
            t.elapsed()
        );
    }

    // What does the purely relational translation of Q2 look like?
    let t = translate(&out.db, &q2())?;
    let catalog = out.db.to_catalog();
    let plan = optimizer::optimize(&t.plan, &catalog)?;
    println!("\nEXPLAIN of the Q2 rewriting (Figure 13's analog):");
    println!("{}", explain::explain(&plan, &catalog));
    Ok(())
}
