//! Section 5 in action: why U-relations are exponentially more succinct
//! than both WSDs and ULDBs — while representing the same world-sets.
//!
//! Run with: `cargo run --example succinctness`

use u_relations::core::construct::or_set_database;
use u_relations::core::{possible, table};
use u_relations::relalg::{col, Value};
use u_relations::uldb::convert::{or_set_to_uldb, or_set_uldb_alternatives, uldb_to_udb};
use u_relations::uldb::example_5_4;
use u_relations::wsd::ring;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The ring world-set of Example 5.1: both encodings are linear for
    // the *input*, but the answer to σ_{A=B}(R) separates them.
    println!("Theorem 5.2 — σ(A=B) over the ring world-set:");
    println!("{:>4} {:>14} {:>16}", "n", "U-rel rows", "WSD cells");
    for n in [4usize, 8, 12, 16] {
        println!(
            "{:>4} {:>14} {:>16}",
            n,
            ring::ring_answer_urel(n).len(),
            ring::ring_answer_wsd_cells(n)
        );
    }
    // And the translated query really produces that answer:
    let db = ring::ring_udb(6)?;
    let q = table("r").select(col("a").eq(col("b")));
    let ans = possible(&db, &q)?;
    println!("translated σ(A=B) possible tuples at n=6:\n{ans}");

    // 2. Or-sets (Theorem 5.6): attribute-level independence is linear in
    // U-relations, exponential in ULDB alternatives.
    println!("Theorem 5.6 — or-set relation with m=4 alternatives per field:");
    println!(
        "{:>4} {:>14} {:>18}",
        "k", "U-rel rows", "ULDB alternatives"
    );
    let m = 4usize;
    for k in [2usize, 4, 6, 8] {
        let row: Vec<Vec<Value>> = (0..k)
            .map(|a| (0..m).map(|i| Value::Int((a * 10 + i) as i64)).collect())
            .collect();
        let attrs: Vec<String> = (0..k).map(|i| format!("c{i}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let udb = or_set_database("r", &attr_refs, &[row])?;
        println!(
            "{:>4} {:>14} {:>18}",
            k,
            udb.total_rows(),
            or_set_uldb_alternatives(&vec![m; k])
        );
    }
    // Constructive cross-check at a feasible size: same world-set.
    let row: Vec<Vec<Value>> = (0..3)
        .map(|a| (0..3).map(|i| Value::Int((a * 10 + i) as i64)).collect())
        .collect();
    let udb = or_set_database("r", &["c0", "c1", "c2"], std::slice::from_ref(&row))?;
    let uldb = or_set_to_uldb("r", &["c0", "c1", "c2"], &[row], 1 << 10)?;
    assert_eq!(
        udb.world.world_count_exact().unwrap() as usize,
        uldb.worlds(1 << 10)?.len()
    );
    println!("(verified: both encodings have the same 27 worlds)");

    // 3. ULDBs translate *into* U-relations linearly (Lemma 5.5):
    let (uldb, _) = example_5_4();
    let back = uldb_to_udb(&uldb, "r")?;
    println!(
        "Lemma 5.5: Example 5.4's ULDB ({} alternatives) → U-relation with {} rows",
        uldb.relation("r")?.alt_count(),
        back.total_rows()
    );
    back.validate()?;
    Ok(())
}
