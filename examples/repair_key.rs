//! `REPAIR KEY`: creating uncertainty from dirty, complete data — the
//! Section 7 "new language constructs" direction (MayBMS's signature
//! primitive, introduced in the companion SIGMOD 2007 paper).
//!
//! A sensor log records conflicting temperature readings per (station,
//! hour). Repairing the key `(station, hour)` yields one world per
//! consistent combination of choices; reading weights make it a
//! probabilistic database. We then query across the repairs, rank
//! answers by confidence, and *condition* on an auditor's finding.
//!
//! Run with: `cargo run --example repair_key`

use u_relations::core::prob::tuple_confidences;
use u_relations::core::worldops::{condition_domain, repair_key};
use u_relations::core::{certain, evaluate, possible, table};
use u_relations::relalg::{col, lit_i64, Relation, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Raw, key-violating sensor data: weight = how often the reading was
    // reported.
    let raw = Relation::from_rows(
        ["station", "hour", "temp", "weight"],
        vec![
            vec![
                Value::str("north"),
                Value::Int(9),
                Value::Int(18),
                Value::Int(3),
            ],
            vec![
                Value::str("north"),
                Value::Int(9),
                Value::Int(31),
                Value::Int(1),
            ],
            vec![
                Value::str("north"),
                Value::Int(10),
                Value::Int(19),
                Value::Int(1),
            ],
            vec![
                Value::str("south"),
                Value::Int(9),
                Value::Int(21),
                Value::Int(1),
            ],
            vec![
                Value::str("south"),
                Value::Int(9),
                Value::Int(22),
                Value::Int(1),
            ],
            vec![
                Value::str("south"),
                Value::Int(9),
                Value::Int(23),
                Value::Int(2),
            ],
        ],
    )?;

    // REPAIR KEY (station, hour) IN raw WEIGHT BY weight.
    let db = repair_key("readings", &raw, &["station", "hour"], Some("weight"))?;
    println!(
        "repairs: {} possible worlds over {} variables",
        db.world.world_count_exact().unwrap(),
        db.world.var_count()
    );

    // Which stations possibly exceeded 25 degrees at 9h?
    let hot = table("readings")
        .select(u_relations::relalg::Expr::and([
            col("hour").eq(lit_i64(9)),
            col("temp").gt(lit_i64(25)),
        ]))
        .project(["station"]);
    println!("possibly hot at 9h:\n{}", possible(&db, &hot)?);

    // How confident are we in each 9h temperature at the south station?
    let south = table("readings")
        .select(u_relations::relalg::Expr::and([
            col("station").eq(u_relations::relalg::lit_str("south")),
            col("hour").eq(lit_i64(9)),
        ]))
        .project(["temp"]);
    let u = evaluate(&db, &south)?;
    println!("south@9h temperature confidences:");
    for (vals, conf) in tuple_confidences(&u, &db.world)? {
        println!("  {:>3}° : {conf:.3}", vals[0]);
    }

    // An auditor certifies the north@9h sensor was NOT faulty (the 31°
    // reading was the glitch): condition the corresponding variable.
    let north_var = db
        .world
        .vars()
        .find(|v| {
            // The north@9h group is the one whose domain has 2 values and
            // whose first value carries probability 0.75 (weights 3:1).
            db.world.domain(*v).unwrap().len() == 2
                && (db.world.prob(*v, 0).unwrap() - 0.75).abs() < 1e-9
        })
        .expect("north@9h variable");
    let cleaned = condition_domain(&db, north_var, &[0])?;
    println!(
        "after conditioning: {} worlds",
        cleaned.world.world_count_exact().unwrap()
    );
    let cert = certain::certain_exact(
        &evaluate(&cleaned, &table("readings").project(["station", "temp"]))?,
        &cleaned.world,
    )?;
    println!("now-certain (station, temp) pairs:\n{cert}");
    Ok(())
}
