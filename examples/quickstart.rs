//! Quickstart: the paper's running example (Figure 1, Examples 1.1,
//! 3.6 and 3.7) end to end.
//!
//! An aerial photograph shows four vehicles. Reconnaissance constrains
//! what they can be; three independent binary choices (x, y, z) describe
//! the eight possible worlds. We build the U-relational database, ask for
//! the enemy tanks, self-join for *pairs* of enemy tanks, and compute
//! certain answers — all by translating positive relational algebra into
//! plain relational algebra over the representation.
//!
//! Run with: `cargo run --example quickstart`

use u_relations::core::certain::certain_answers;
use u_relations::core::prob::tuple_confidences;
use u_relations::core::{evaluate, figure1_database, oracle_possible, possible, table, table_as};
use u_relations::relalg::{col, lit_str, Expr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 1's database: R(Id, Type, Faction) in three vertical
    // partitions U1, U2, U3 plus the world table W.
    let db = figure1_database();
    db.validate()?;
    println!(
        "worlds represented: {}",
        db.world.world_count_exact().unwrap()
    );
    for p in db.partitions_of("r")? {
        println!("{p}");
    }

    // Example 3.6: ids of enemy tanks — σ then π, translated to a single
    // relational algebra query over U1 ⋈ U2 ⋈ U3.
    let enemy_tanks = table("r")
        .select(Expr::and([
            col("type").eq(lit_str("Tank")),
            col("faction").eq(lit_str("Enemy")),
        ]))
        .project(["id"]);

    let u4 = evaluate(&db, &enemy_tanks)?;
    println!("U4 — the answer U-relation of Example 3.6:\n{u4}");

    let poss = possible(&db, &enemy_tanks)?;
    println!("possible enemy-tank ids:\n{poss}");
    // Sanity: the efficient translation agrees with brute-force world
    // enumeration.
    assert!(poss.set_eq(&oracle_possible(&enemy_tanks, &db, 64)?));

    // Example 3.7: is it possible that the enemy has *two* tanks?
    // A self-join; the ψ-condition discards the inconsistent descriptor
    // combinations (vehicle c cannot be at two positions at once).
    let s1 = table_as("r", "s1").select(Expr::and([
        col("s1.type").eq(lit_str("Tank")),
        col("s1.faction").eq(lit_str("Enemy")),
    ]));
    let s2 = table_as("r", "s2").select(Expr::and([
        col("s2.type").eq(lit_str("Tank")),
        col("s2.faction").eq(lit_str("Enemy")),
    ]));
    let pairs = s1
        .join(s2, col("s1.id").ne(col("s2.id")))
        .project(["s1.id", "s2.id"]);
    let u5 = evaluate(&db, &pairs)?;
    println!("U5 — possible pairs of enemy tanks (Example 3.7):\n{u5}");

    // Certain answers (Section 4): which factions certainly appear?
    let factions = table("r").project(["faction"]);
    let certain = certain_answers(&db, &factions)?;
    println!("certain factions:\n{certain}");

    // Probabilistic extension (Section 7): with uniform choice
    // probabilities, how confident are we in each possible id?
    let ids = evaluate(&db, &table("r").project(["id"]))?;
    println!("confidence of each possible vehicle id:");
    for (vals, conf) in tuple_confidences(&ids, &db.world)? {
        println!("  id {} : {conf:.3}", vals[0]);
    }
    Ok(())
}
