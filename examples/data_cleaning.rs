//! Data cleaning with attribute-level uncertainty — the application the
//! paper's introduction motivates (census forms whose fields are
//! independently uncertain; cf. the U.S. Census Bureau example).
//!
//! A census relation `person(pid, name, marital, zip)` has OCR-ambiguous
//! fields. Or-set fields become independent variables (attribute-level
//! representation keeps them independent — a tuple-level system would
//! enumerate the cross product). We then:
//!
//! 1. query across the uncertainty (possible/certain answers),
//! 2. clean the data by *removing worlds* via a selection, and
//! 3. rank answers by confidence using the probabilistic extension.
//!
//! Run with: `cargo run --example data_cleaning`

use u_relations::core::certain::certain_exact;
use u_relations::core::construct::or_set_database;
use u_relations::core::prob::{confidence_monte_carlo, tuple_confidences};
use u_relations::core::{evaluate, possible, table};
use u_relations::relalg::{col, lit_str, Expr, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three census records; ambiguous fields carry alternative readings.
    let v = Value::str;
    let rows: Vec<Vec<Vec<Value>>> = vec![
        // pid 1: marital status smudged (single or married), zip clear.
        vec![
            vec![Value::Int(1)],
            vec![v("alice")],
            vec![v("single"), v("married")],
            vec![Value::Int(94_107)],
        ],
        // pid 2: name OCR'd two ways, zip has two candidate readings.
        vec![
            vec![Value::Int(2)],
            vec![v("bob"), v("rob")],
            vec![v("married")],
            vec![Value::Int(94_107), Value::Int(94_607)],
        ],
        // pid 3: everything certain.
        vec![
            vec![Value::Int(3)],
            vec![v("carla")],
            vec![v("widowed")],
            vec![Value::Int(10_001)],
        ],
    ];
    let db = or_set_database("person", &["pid", "name", "marital", "zip"], &rows)?;
    println!(
        "census database: {} rows across {} partitions, {} possible worlds",
        db.total_rows(),
        db.partitions_of("person")?.len(),
        db.world.world_count_exact().unwrap()
    );

    // Who possibly lives in 94107?
    let in_sf = table("person")
        .select(col("zip").eq(u_relations::relalg::lit_i64(94_107)))
        .project(["pid", "name"]);
    println!("possibly in 94107:\n{}", possible(&db, &in_sf)?);

    // Which (pid, marital) pairs are *certain* regardless of cleaning
    // outcome?
    let marital = table("person").project(["pid", "marital"]);
    let u = evaluate(&db, &marital)?;
    println!(
        "certain marital statuses:\n{}",
        certain_exact(&u, &db.world)?
    );

    // Cleaning step: suppose an external source confirms record 1 is
    // married. Selection expresses the constraint; the result is again a
    // U-relation (closure under queries).
    let cleaned = table("person")
        .select(Expr::or([
            col("pid").ne(u_relations::relalg::lit_i64(1)),
            col("marital").eq(lit_str("married")),
        ]))
        .project(["pid", "marital"]);
    println!("after cleaning:\n{}", possible(&db, &cleaned)?);

    // Probabilistic ranking: make the OCR confidences explicit. Variables
    // are or-set fields in creation order: marital(1), name(2), zip(2).
    let mut pdb = db.clone();
    let vars: Vec<_> = pdb.world.vars().collect();
    pdb.world.set_probabilities(vars[0], vec![0.8, 0.2])?; // single vs married
    pdb.world.set_probabilities(vars[1], vec![0.6, 0.4])?; // bob vs rob
    pdb.world.set_probabilities(vars[2], vec![0.9, 0.1])?; // 94107 vs 94607
    let names = evaluate(&pdb, &table("person").project(["name"]))?;
    println!("name confidences (exact):");
    for (vals, conf) in tuple_confidences(&names, &pdb.world)? {
        println!("  {:<8} {conf:.3}", vals[0].to_string());
    }
    // The Monte-Carlo estimator agrees (Section 7's approximation track).
    let bob_rows: Vec<_> = names
        .rows()
        .iter()
        .filter(|r| r.vals[0] == v("bob"))
        .map(|r| r.desc.clone())
        .collect();
    let est = confidence_monte_carlo(&bob_rows, &pdb.world, 20_000, 7)?;
    println!("P(bob) ≈ {est:.3} by Monte Carlo");
    Ok(())
}
